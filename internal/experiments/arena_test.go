package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flashswl/internal/obs"
	"flashswl/internal/sim"
)

// TestArenaQuick runs the tournament at the miniature scale and pins its
// shape: every registered strategy plus the baseline competes, each over the
// identical trace, and the leaderboard CSV is byte-deterministic (golden).
func TestArenaQuick(t *testing.T) {
	sc := QuickScale()
	sc.CheckInvariants = true
	labels := map[string]bool{}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	sc.OnCellDone = func(label string, cfg sim.Config, res *sim.Result) {
		<-mu
		labels[label] = true
		mu <- struct{}{}
	}
	arena, err := RunArena(sc, sim.FTL, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	strategies := ArenaStrategies()
	if len(strategies) < 5 {
		t.Fatalf("arena field has %d entrants, want the baseline plus at least 4 strategies", len(strategies))
	}
	if len(arena.Rows) != len(strategies) {
		t.Fatalf("arena produced %d rows, want %d", len(arena.Rows), len(strategies))
	}
	for _, row := range arena.Rows {
		if row.Res == nil {
			t.Fatalf("entrant %q has no result", row.Strategy)
		}
		if !labels[arenaLabel(sim.FTL, row.Strategy)] {
			t.Errorf("entrant %q never reported to OnCellDone", row.Strategy)
		}
		if row.Strategy == ArenaBaseline {
			if row.Res.ForcedErases != 0 {
				t.Errorf("baseline recorded %d forced erases, want 0", row.Res.ForcedErases)
			}
		} else if row.Res.Leveler.Erases == 0 {
			t.Errorf("entrant %q observed no erases", row.Strategy)
		}
	}
	board := arena.Leaderboard()
	ranks := map[int]bool{}
	for _, s := range board {
		if ranks[s.Rank] {
			t.Errorf("duplicate rank %d", s.Rank)
		}
		ranks[s.Rank] = true
	}
	checkGolden(t, "arena_ftl_quick.csv", ArenaCSV(arena))
}

// TestArenaArtifacts pins the artifact layout CI diffs: a leaderboard CSV
// plus one single-run BENCH summary per entrant, each readable and labeled
// with its arena cell name.
func TestArenaArtifacts(t *testing.T) {
	sc := QuickScale()
	arena, err := RunArena(sc, sim.FTL, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	names, err := WriteArenaArtifacts(dir, arena)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(arena.Rows)+1 {
		t.Fatalf("wrote %d files, want leaderboard + %d summaries", len(names), len(arena.Rows))
	}
	lb, err := os.ReadFile(filepath.Join(dir, "leaderboard.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(lb) != ArenaCSV(arena) {
		t.Error("leaderboard.csv does not match ArenaCSV")
	}
	for _, row := range arena.Rows {
		raw, err := os.ReadFile(filepath.Join(dir, "BENCH_arena_"+row.Strategy+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var b obs.BenchSummary
		if err := json.Unmarshal(raw, &b); err != nil {
			t.Fatalf("summary for %q: %v", row.Strategy, err)
		}
		if len(b.Runs) != 1 || b.Runs[0].Name != arenaLabel(sim.FTL, row.Strategy) {
			t.Errorf("summary for %q carries %d runs, first %q", row.Strategy, len(b.Runs), b.Runs[0].Name)
		}
		want := ""
		if row.Strategy != ArenaBaseline {
			want = row.Strategy
		}
		if b.Runs[0].Leveler != want {
			t.Errorf("summary for %q labels leveler %q, want %q", row.Strategy, b.Runs[0].Leveler, want)
		}
	}
}

// TestArenaLeaderboardRanking pins the ranking relation on the quick-scale
// outcome: survivors ahead of casualties, later wear ahead of earlier.
func TestArenaLeaderboardRanking(t *testing.T) {
	sc := QuickScale()
	arena, err := RunArena(sc, sim.FTL, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	board := arena.Leaderboard()
	for i := 1; i < len(board); i++ {
		prev, cur := board[i-1], board[i]
		if !prev.Survived && cur.Survived {
			t.Errorf("casualty %q (rank %d) ranked above survivor %q", prev.Strategy, prev.Rank, cur.Strategy)
		}
		if prev.Survived == cur.Survived && prev.FirstWearYears < cur.FirstWearYears {
			t.Errorf("%q wore at %.4g years but outranks %q at %.4g",
				prev.Strategy, prev.FirstWearYears, cur.Strategy, cur.FirstWearYears)
		}
	}
	// The CSV header names the sweep point so a leaderboard is
	// self-describing when archived.
	if !strings.HasPrefix(ArenaCSV(arena), "# arena FTL k=0 T=100\n") {
		t.Errorf("CSV header drifted: %q", strings.SplitN(ArenaCSV(arena), "\n", 2)[0])
	}
}
