// Package wire provides little-endian, fixed-width binary encoding helpers
// for the in-repo state codecs (driver snapshots, leveler exports, trace
// positions, checkpoint sections). A Writer appends values to a growing
// buffer; a Reader consumes them with a sticky error, so codecs can decode a
// whole record and check failure once at the end. Everything is plain bytes:
// no reflection, no varints, no framing — framing and integrity (CRCs,
// magic numbers) belong to the formats built on top.
//
// The package has no concurrency concerns (a Writer or Reader is used by one
// goroutine) and is fully deterministic: equal values encode to equal bytes.
package wire

import (
	"errors"
	"fmt"
	"math"
)

// ErrShort reports a Reader that ran out of bytes mid-value.
var ErrShort = errors.New("wire: short buffer")

// ErrTrailing reports leftover bytes after a codec consumed a full record.
var ErrTrailing = errors.New("wire: trailing bytes")

// Writer accumulates little-endian values.
type Writer struct{ b []byte }

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.b }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.b = append(w.b, v) }

// Bool appends a bool as one byte (1/0).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a uint16.
func (w *Writer) U16(v uint16) { w.b = append(w.b, byte(v), byte(v>>8)) }

// U32 appends a uint32.
func (w *Writer) U32(v uint32) {
	w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a uint64.
func (w *Writer) U64(v uint64) {
	w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I32 appends an int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE 754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// I32s appends a u32 length prefix followed by the values.
func (w *Writer) I32s(v []int32) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.I32(x)
	}
}

// U16s appends a u32 length prefix followed by the values.
func (w *Writer) U16s(v []uint16) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.U16(x)
	}
}

// U64s appends a u32 length prefix followed by the values.
func (w *Writer) U64s(v []uint64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.U64(x)
	}
}

// Blob appends a u32 length prefix followed by the raw bytes.
func (w *Writer) Blob(p []byte) {
	w.U32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// Reader consumes little-endian values from a byte slice. The first
// out-of-bounds access sets a sticky error; every later call returns zero
// values, so codecs check Err once after decoding a full record.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps data (not copied) in a Reader.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the sticky error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Close returns the sticky error, or ErrTrailing if any bytes are unread:
// a full record must account for every byte, or the codec is misreading it.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.data)-r.off)
	}
	return nil
}

// take reserves n bytes, or sets the sticky error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.err = ErrShort
		return nil
	}
	p := r.data[r.off : r.off+n]
	r.off += n
	return p
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads one byte as a bool (nonzero = true).
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a uint16.
func (r *Reader) U16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return uint16(p[0]) | uint16(p[1])<<8
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

// I32 reads an int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its IEEE 754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// length reads a u32 length prefix, bounding it by the bytes actually left
// (each element needs at least elemSize bytes), so a corrupt prefix cannot
// drive a huge allocation.
func (r *Reader) length(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > r.Remaining() {
		r.err = ErrShort
		return 0
	}
	return n
}

// I32s reads a length-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.length(4)
	if r.err != nil {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = r.I32()
	}
	return v
}

// U16s reads a length-prefixed []uint16.
func (r *Reader) U16s() []uint16 {
	n := r.length(2)
	if r.err != nil {
		return nil
	}
	v := make([]uint16, n)
	for i := range v {
		v[i] = r.U16()
	}
	return v
}

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.length(8)
	if r.err != nil {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = r.U64()
	}
	return v
}

// Blob reads a length-prefixed byte slice (a sub-slice of the input, not a
// copy).
func (r *Reader) Blob() []byte {
	n := r.length(1)
	if r.err != nil {
		return nil
	}
	return r.take(n)
}
