package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestRoundTrip writes one of every value type and reads it back.
func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.I32(-42)
	w.I64(math.MinInt64)
	w.F64(-0.5)
	w.I32s([]int32{-1, 0, 1})
	w.U16s([]uint16{7})
	w.U64s(nil)
	w.Blob([]byte("blob"))

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool roundtrip failed")
	}
	if got := r.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I32(); got != -42 {
		t.Errorf("I32 = %d", got)
	}
	if got := r.I64(); got != math.MinInt64 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != -0.5 {
		t.Errorf("F64 = %g", got)
	}
	if got := r.I32s(); !reflect.DeepEqual(got, []int32{-1, 0, 1}) {
		t.Errorf("I32s = %v", got)
	}
	if got := r.U16s(); !reflect.DeepEqual(got, []uint16{7}) {
		t.Errorf("U16s = %v", got)
	}
	if got := r.U64s(); len(got) != 0 {
		t.Errorf("U64s = %v, want empty", got)
	}
	if got := r.Blob(); string(got) != "blob" {
		t.Errorf("Blob = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestDeterministicEncoding: equal values encode to equal bytes — the
// property the package doc promises and the checkpoint digests rely on.
func TestDeterministicEncoding(t *testing.T) {
	enc := func() []byte {
		w := NewWriter()
		w.U64(12345)
		w.Blob([]byte{1, 2, 3})
		w.F64(math.Pi)
		return w.Bytes()
	}
	if !reflect.DeepEqual(enc(), enc()) {
		t.Fatal("equal values encoded differently")
	}
}

// TestShortBufferSticks: the first out-of-bounds read sets a sticky error
// and every later read returns zero values.
func TestShortBufferSticks(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.U32(); got != 0 {
		t.Errorf("short U32 = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("Err = %v, want ErrShort", r.Err())
	}
	if got := r.U64(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
	if !errors.Is(r.Close(), ErrShort) {
		t.Errorf("Close = %v, want ErrShort", r.Close())
	}
}

// TestTrailingBytes: a codec must account for every byte of a record.
func TestTrailingBytes(t *testing.T) {
	w := NewWriter()
	w.U32(9)
	w.U8(1)
	r := NewReader(w.Bytes())
	_ = r.U32()
	if !errors.Is(r.Close(), ErrTrailing) {
		t.Errorf("Close = %v, want ErrTrailing", r.Close())
	}
}

// TestBoundedLengthPrefix: a corrupt length prefix larger than the bytes
// present errors instead of sizing an allocation from attacker input.
func TestBoundedLengthPrefix(t *testing.T) {
	w := NewWriter()
	w.U32(0xFFFFFFFF) // claims ~4G elements, none present
	for _, read := range []func(*Reader){
		func(r *Reader) { r.U64s() },
		func(r *Reader) { r.I32s() },
		func(r *Reader) { r.U16s() },
		func(r *Reader) { r.Blob() },
	} {
		r := NewReader(w.Bytes())
		read(r)
		if !errors.Is(r.Err(), ErrShort) {
			t.Errorf("oversized prefix: Err = %v, want ErrShort", r.Err())
		}
	}
}
