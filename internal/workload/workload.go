// Package workload synthesizes disk traces with the statistical profile the
// paper reports for its experiment trace (§5.1): one month of mobile-PC
// activity over the first 2,097,152 sectors of an NTFS disk, 36.62% of the
// LBAs written at least once, an average of 1.82 write and 1.97 read
// requests per second, hot data written in bursts (§5.3), and a cold
// majority — data written once (downloads, documents, installs) and then
// only read — several times larger than the hot set.
//
// The address space is divided into extents, each assigned a temperature:
//
//   - hot: a small slice of the written footprint receiving most ongoing
//     writes, in sequential bursts;
//   - warm: the rest of the ongoing writes;
//   - cold: filled once during an initial fill phase, then read-only;
//   - untouched: never written (the remaining ~63% of the disk).
//
// Every segment of the trace is generated deterministically from the model
// seed and the segment index, so the month-long base trace never has to be
// materialized: the paper's "virtually unlimited" derived trace re-samples
// 10-minute segments on demand. The sources this package builds are
// single-goroutine, seeded-deterministic, and seekable (trace.Seekable),
// so checkpointed runs resume mid-stream.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"flashswl/internal/trace"
)

// Model describes a synthetic workload. The zero value is not valid; start
// from Paper() or PaperScaled() and override fields as needed.
type Model struct {
	// Sectors is the number of 512-byte sectors in scope.
	Sectors int64
	// ExtentSectors is the granularity of temperature assignment. Aligning
	// it to the flash block size (512 sectors on MLC×2) makes the logical
	// layout meaningful for the block-mapped NFTL as well.
	ExtentSectors int
	// Duration is the base trace length (the paper collected one month).
	Duration time.Duration
	// SegmentLen is the resampling granularity (the paper uses 10 min).
	SegmentLen time.Duration
	// WriteRate and ReadRate are average requests per second.
	WriteRate, ReadRate float64
	// WrittenFraction is the fraction of sectors written at least once.
	WrittenFraction float64
	// HotFraction and WarmFraction split the written footprint; the rest
	// of the footprint is cold (write-once). HotWriteRatio is the share of
	// ongoing writes aimed at the hot extents.
	HotFraction, WarmFraction float64
	// HotWriteRatio is the fraction of ongoing write requests that target
	// hot extents (the remainder hits warm extents).
	HotWriteRatio float64
	// MeanRequestSectors is the average request size.
	MeanRequestSectors int
	// BurstMean is the average number of back-to-back requests in a hot
	// write burst.
	BurstMean int
	// FillSegments is the number of leading segments across which the
	// cold footprint is written exactly once.
	FillSegments int
	// Seed drives all randomness; equal models generate equal traces.
	Seed int64
}

// Paper returns the model calibrated to the paper's reported workload
// statistics at full scale (1 GB of sectors in scope).
func Paper() Model {
	return Model{
		Sectors:            2_097_152,
		ExtentSectors:      512,
		Duration:           30 * 24 * time.Hour,
		SegmentLen:         10 * time.Minute,
		WriteRate:          1.82,
		ReadRate:           1.97,
		WrittenFraction:    0.3662,
		HotFraction:        0.10,
		WarmFraction:       0.15,
		HotWriteRatio:      0.85,
		MeanRequestSectors: 8,
		BurstMean:          6,
		FillSegments:       144, // one day of fill activity
		Seed:               1,
	}
}

// PaperScaled returns the paper model shrunk to a device with the given
// sector count, keeping every ratio. Request sizes, rates, and segment
// length stay unchanged: a smaller device simply wears faster, which is the
// point of scaled simulations.
func PaperScaled(sectors int64) Model {
	m := Paper()
	m.Sectors = sectors
	// Keep at least a handful of extents per class on tiny devices.
	for m.ExtentSectors > 64 && float64(sectors)/float64(m.ExtentSectors)*m.WrittenFraction*m.HotFraction < 4 {
		m.ExtentSectors /= 2
	}
	// Shrink the fill phase so the write-once footprint still fits in it.
	m.FillSegments = 24
	return m
}

// Validate reports whether the model is internally consistent.
func (m Model) Validate() error {
	switch {
	case m.Sectors <= 0:
		return fmt.Errorf("workload: %d sectors", m.Sectors)
	case m.ExtentSectors <= 0 || int64(m.ExtentSectors) > m.Sectors:
		return fmt.Errorf("workload: extent of %d sectors on %d", m.ExtentSectors, m.Sectors)
	case m.Duration <= 0 || m.SegmentLen <= 0 || m.SegmentLen > m.Duration:
		return fmt.Errorf("workload: duration %v / segment %v", m.Duration, m.SegmentLen)
	case m.WriteRate < 0 || m.ReadRate < 0 || m.WriteRate+m.ReadRate == 0:
		return fmt.Errorf("workload: rates %g/%g", m.WriteRate, m.ReadRate)
	case m.WrittenFraction <= 0 || m.WrittenFraction > 1:
		return fmt.Errorf("workload: written fraction %g", m.WrittenFraction)
	case m.HotFraction < 0 || m.WarmFraction < 0 || m.HotFraction+m.WarmFraction > 1:
		return fmt.Errorf("workload: hot %g + warm %g", m.HotFraction, m.WarmFraction)
	case m.HotWriteRatio < 0 || m.HotWriteRatio > 1:
		return fmt.Errorf("workload: hot write ratio %g", m.HotWriteRatio)
	case m.MeanRequestSectors <= 0 || m.BurstMean <= 0:
		return fmt.Errorf("workload: request %d / burst %d", m.MeanRequestSectors, m.BurstMean)
	case m.FillSegments < 0:
		return fmt.Errorf("workload: %d fill segments", m.FillSegments)
	}
	return nil
}

// Layout is the temperature assignment of extents, derived from the seed.
type Layout struct {
	ExtentSectors int
	Hot, Warm     []int64 // extent start sectors
	Cold          []int64
}

// Layout computes the deterministic extent classification.
func (m Model) Layout() Layout {
	nExtents := m.Sectors / int64(m.ExtentSectors)
	written := int64(float64(nExtents)*m.WrittenFraction + 0.5)
	if written < 3 {
		written = 3
	}
	if written > nExtents {
		written = nExtents
	}
	nHot := int64(float64(written)*m.HotFraction + 0.5)
	nWarm := int64(float64(written)*m.WarmFraction + 0.5)
	if nHot < 1 {
		nHot = 1
	}
	if nWarm < 1 {
		nWarm = 1
	}
	if nHot+nWarm > written {
		nWarm = written - nHot
	}
	rng := rand.New(rand.NewSource(m.Seed))
	perm := rng.Perm(int(nExtents))
	l := Layout{ExtentSectors: m.ExtentSectors}
	for i := int64(0); i < written; i++ {
		start := int64(perm[i]) * int64(m.ExtentSectors)
		switch {
		case i < nHot:
			l.Hot = append(l.Hot, start)
		case i < nHot+nWarm:
			l.Warm = append(l.Warm, start)
		default:
			l.Cold = append(l.Cold, start)
		}
	}
	return l
}

// Segments returns the number of segments in the base trace.
func (m Model) Segments() int { return int(m.Duration / m.SegmentLen) }

// Segment deterministically generates segment i (times relative to the
// segment start, sorted). Segments in the fill phase additionally carry the
// one-time sequential writes that lay down the cold footprint.
func (m Model) Segment(i int) []trace.Event {
	l := m.Layout()
	return m.segment(i, &l)
}

func (m Model) segment(i int, l *Layout) []trace.Event {
	rng := rand.New(rand.NewSource(m.Seed*1_000_003 + int64(i)*7919 + 17))
	segSec := m.SegmentLen.Seconds()
	var events []trace.Event

	reqLen := func() int {
		n := 1 + rng.Intn(2*m.MeanRequestSectors-1)
		return n
	}
	randomIn := func(starts []int64) int64 {
		start := starts[rng.Intn(len(starts))]
		return start + int64(rng.Intn(m.ExtentSectors))
	}
	clampLen := func(lba int64, n int) int {
		if lba+int64(n) > m.Sectors {
			n = int(m.Sectors - lba)
		}
		if n < 1 {
			n = 1
		}
		return n
	}

	nW := m.countFor(m.WriteRate, segSec, rng)

	// Fill phase: write this segment's slice of the cold footprint once.
	// Fill requests count against the segment's write budget so the trace
	// still averages WriteRate requests per second over the month.
	if i < m.FillSegments && len(l.Cold) > 0 {
		perSeg := (len(l.Cold) + m.FillSegments - 1) / m.FillSegments
		lo := i * perSeg
		hi := lo + perSeg
		if hi > len(l.Cold) {
			hi = len(l.Cold)
		}
		for x := lo; x < hi; x++ {
			start := l.Cold[x]
			t := time.Duration(rng.Float64() * float64(m.SegmentLen))
			for off := 0; off < m.ExtentSectors; {
				n := clampLen(start+int64(off), reqLen())
				if off+n > m.ExtentSectors {
					n = m.ExtentSectors - off
				}
				events = append(events, trace.Event{Time: m.clampT(t), Op: trace.Write, LBA: start + int64(off), Count: n})
				off += n
				t += time.Millisecond
				nW--
			}
		}
	}

	// Ongoing writes: bursty on hot extents, single requests on warm. A
	// hot *burst* carries BurstMean requests on average, so the chance of
	// starting one is scaled down to keep the per-request hot share at
	// HotWriteRatio.
	hotBurstP := 0.0
	if h, b := m.HotWriteRatio, float64(m.BurstMean); h > 0 {
		hotBurstP = h / (h + b*(1-h))
	}
	for issued := 0; issued < nW; {
		t := time.Duration(rng.Float64() * float64(m.SegmentLen))
		if rng.Float64() < hotBurstP && len(l.Hot) > 0 {
			burst := 1 + rng.Intn(2*m.BurstMean-1)
			ext := l.Hot[rng.Intn(len(l.Hot))]
			lba := ext + int64(rng.Intn(m.ExtentSectors))
			for j := 0; j < burst && issued < nW; j++ {
				n := clampLen(lba, reqLen())
				if lba+int64(n) > ext+int64(m.ExtentSectors) {
					n = int(ext + int64(m.ExtentSectors) - lba)
				}
				events = append(events, trace.Event{Time: m.clampT(t), Op: trace.Write, LBA: lba, Count: n})
				lba += int64(n)
				if lba >= ext+int64(m.ExtentSectors) {
					// Sequential burst wraps to a fresh hot extent.
					ext = l.Hot[rng.Intn(len(l.Hot))]
					lba = ext
				}
				t += 2 * time.Millisecond
				issued++
			}
		} else if len(l.Warm) > 0 {
			lba := randomIn(l.Warm)
			n := clampLen(lba, reqLen())
			events = append(events, trace.Event{Time: m.clampT(t), Op: trace.Write, LBA: lba, Count: n})
			issued++
		} else {
			issued++ // degenerate model with no warm extents
		}
	}

	// Reads: mostly over the active data, partly over the cold archive
	// (movie playing and the like).
	nR := m.countFor(m.ReadRate, segSec, rng)
	for r := 0; r < nR; r++ {
		t := time.Duration(rng.Float64() * float64(m.SegmentLen))
		var lba int64
		switch {
		case rng.Float64() < 0.3 && len(l.Cold) > 0:
			lba = randomIn(l.Cold)
		case rng.Float64() < 0.5 && len(l.Warm) > 0:
			lba = randomIn(l.Warm)
		case len(l.Hot) > 0:
			lba = randomIn(l.Hot)
		default:
			lba = rng.Int63n(m.Sectors)
		}
		events = append(events, trace.Event{Time: m.clampT(t), Op: trace.Read, LBA: lba, Count: clampLen(lba, reqLen())})
	}

	sort.Slice(events, func(a, b int) bool { return events[a].Time < events[b].Time })
	return events
}

// countFor converts a rate into an event count for a segment, dithering the
// fractional part so long traces match the rate exactly in expectation.
func (m Model) countFor(rate, segSec float64, rng *rand.Rand) int {
	x := rate * segSec
	n := int(x)
	if rng.Float64() < x-float64(n) {
		n++
	}
	return n
}

func (m Model) clampT(t time.Duration) time.Duration {
	if t >= m.SegmentLen {
		t = m.SegmentLen - time.Microsecond
	}
	if t < 0 {
		t = 0
	}
	return t
}

// seqSource streams the base trace segment by segment.
type seqSource struct {
	m      Model
	layout Layout
	seg    int
	nseg   int
	cur    []trace.Event
	pos    int
	base   time.Duration
}

// Source returns the finite base trace (the "collected month") as a stream.
func (m Model) Source() trace.Source {
	return &seqSource{m: m, layout: m.Layout(), nseg: m.Segments()}
}

// Next implements trace.Source.
func (s *seqSource) Next() (trace.Event, bool) {
	for s.pos >= len(s.cur) {
		if s.seg >= s.nseg {
			return trace.Event{}, false
		}
		s.cur = s.m.segment(s.seg, &s.layout)
		s.pos = 0
		s.base = time.Duration(s.seg) * s.m.SegmentLen
		s.seg++
	}
	e := s.cur[s.pos]
	s.pos++
	e.Time += s.base
	return e, true
}

// Infinite returns the paper's "virtually unlimited" derived trace: the
// fill phase plays first in order (so the cold footprint exists on the
// device, as it did on the paper's real disk before the trace was
// collected), followed by an endless resampling of random segments of the
// base trace.
func (m Model) Infinite(seed int64) trace.Source {
	layout := m.Layout()
	segf := func(i int) []trace.Event { return m.segment(i, &layout) }
	fill := &seqSource{m: m, layout: layout, nseg: m.FillSegments}
	return &infiniteSource{
		fill:      fill,
		offset:    time.Duration(m.FillSegments) * m.SegmentLen,
		resampler: trace.NewResampler(segf, m.Segments(), m.SegmentLen, seed),
	}
}

// infiniteSource chains the fill phase with the segment resampler.
type infiniteSource struct {
	fill      *seqSource
	fillDone  bool
	offset    time.Duration
	resampler *trace.Resampler
}

// Next implements trace.Source; it never reports false.
func (s *infiniteSource) Next() (trace.Event, bool) {
	if !s.fillDone {
		if e, ok := s.fill.Next(); ok {
			return e, true
		}
		s.fillDone = true
	}
	e, _ := s.resampler.Next()
	e.Time += s.offset
	return e, true
}

// UniformSource is a structure-free workload: requests arrive at fixed
// rates with uniformly random sector addresses — no hot set, no cold set.
// It is the negative control for static wear leveling: with nothing pinned,
// dynamic wear leveling alone keeps blocks even and the SW Leveler should
// neither help nor hurt much.
type UniformSource struct {
	sectors  int64
	meanReq  int
	interval time.Duration
	writeP   float64
	seed     int64
	rng      *rand.Rand
	events   int64 // emitted so far, for replay-based state restore
	now      time.Duration
}

// NewUniform builds an infinite uniform source with the given request rates
// (per second) and mean request size in sectors.
func NewUniform(sectors int64, writeRate, readRate float64, meanReq int, seed int64) *UniformSource {
	total := writeRate + readRate
	if sectors <= 0 || total <= 0 || meanReq <= 0 {
		panic("workload: invalid uniform source shape")
	}
	return &UniformSource{
		sectors:  sectors,
		meanReq:  meanReq,
		interval: time.Duration(float64(time.Second) / total),
		writeP:   writeRate / total,
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Next implements trace.Source; the stream never ends.
func (u *UniformSource) Next() (trace.Event, bool) {
	op := trace.Read
	if u.rng.Float64() < u.writeP {
		op = trace.Write
	}
	n := 1 + u.rng.Intn(2*u.meanReq-1)
	lba := u.rng.Int63n(u.sectors)
	if lba+int64(n) > u.sectors {
		n = int(u.sectors - lba)
	}
	e := trace.Event{Time: u.now, Op: op, LBA: lba, Count: n}
	u.now += u.interval
	u.events++
	return e, true
}
