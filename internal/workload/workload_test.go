package workload

import (
	"math"
	"testing"
	"time"

	"flashswl/internal/trace"
)

// smallModel is a fast model for tests: 1/16 of the paper device, 2 hours
// of trace.
func smallModel() Model {
	m := PaperScaled(131_072) // 64 MB of sectors
	m.Duration = 2 * time.Hour
	m.FillSegments = 4
	return m
}

func TestPaperModelValidates(t *testing.T) {
	if err := Paper().Validate(); err != nil {
		t.Fatalf("Paper(): %v", err)
	}
	if err := smallModel().Validate(); err != nil {
		t.Fatalf("smallModel: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	mods := []func(*Model){
		func(m *Model) { m.Sectors = 0 },
		func(m *Model) { m.ExtentSectors = 0 },
		func(m *Model) { m.ExtentSectors = int(m.Sectors) + 1 },
		func(m *Model) { m.Duration = 0 },
		func(m *Model) { m.SegmentLen = m.Duration * 2 },
		func(m *Model) { m.WriteRate, m.ReadRate = 0, 0 },
		func(m *Model) { m.WriteRate = -1 },
		func(m *Model) { m.WrittenFraction = 0 },
		func(m *Model) { m.WrittenFraction = 1.5 },
		func(m *Model) { m.HotFraction = 0.9; m.WarmFraction = 0.9 },
		func(m *Model) { m.HotWriteRatio = 2 },
		func(m *Model) { m.MeanRequestSectors = 0 },
		func(m *Model) { m.BurstMean = 0 },
		func(m *Model) { m.FillSegments = -1 },
	}
	for i, mod := range mods {
		m := Paper()
		mod(&m)
		if m.Validate() == nil {
			t.Errorf("case %d: bad model validated", i)
		}
	}
}

func TestSegmentsDeterministic(t *testing.T) {
	m := smallModel()
	a := m.Segment(3)
	b := m.Segment(3)
	if len(a) == 0 {
		t.Fatal("segment 3 empty")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Different segments differ.
	c := m.Segment(4)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("segments 3 and 4 are identical")
	}
}

func TestSegmentEventsSortedAndBounded(t *testing.T) {
	m := smallModel()
	for _, i := range []int{0, 1, 7, m.Segments() - 1} {
		events := m.Segment(i)
		var last time.Duration
		for _, e := range events {
			if e.Time < last {
				t.Fatalf("segment %d not sorted", i)
			}
			last = e.Time
			if e.Time >= m.SegmentLen {
				t.Fatalf("segment %d event at %v beyond segment length", i, e.Time)
			}
			if e.LBA < 0 || e.LBA+int64(e.Count) > m.Sectors {
				t.Fatalf("segment %d event out of range: %+v", i, e)
			}
			if e.Count <= 0 {
				t.Fatalf("segment %d event with count %d", i, e.Count)
			}
		}
	}
}

func TestRatesMatchPaper(t *testing.T) {
	m := smallModel()
	st := trace.Summarize(m.Source())
	if math.Abs(st.WriteRate-m.WriteRate)/m.WriteRate > 0.10 {
		t.Errorf("write rate = %.3f/s, want ≈ %.2f/s", st.WriteRate, m.WriteRate)
	}
	if math.Abs(st.ReadRate-m.ReadRate)/m.ReadRate > 0.10 {
		t.Errorf("read rate = %.3f/s, want ≈ %.2f/s", st.ReadRate, m.ReadRate)
	}
}

func TestWrittenFootprintMatchesPaper(t *testing.T) {
	// After the fill phase completes, the unique written LBAs must come
	// out near the configured WrittenFraction (36.62% in the paper).
	m := smallModel()
	st := trace.Summarize(m.Source())
	frac := float64(st.UniqueLBAs) / float64(m.Sectors)
	if frac < m.WrittenFraction*0.85 || frac > m.WrittenFraction*1.10 {
		t.Errorf("written fraction = %.4f, want ≈ %.4f", frac, m.WrittenFraction)
	}
}

func TestLayoutClassesDisjointAndSized(t *testing.T) {
	m := smallModel()
	l := m.Layout()
	seen := map[int64]string{}
	for _, s := range l.Hot {
		seen[s] = "hot"
	}
	for _, s := range l.Warm {
		if seen[s] != "" {
			t.Fatalf("extent %d in both hot and warm", s)
		}
		seen[s] = "warm"
	}
	for _, s := range l.Cold {
		if seen[s] != "" {
			t.Fatalf("extent %d in %s and cold", s, seen[s])
		}
		seen[s] = "cold"
	}
	total := len(l.Hot) + len(l.Warm) + len(l.Cold)
	wantTotal := float64(m.Sectors) / float64(m.ExtentSectors) * m.WrittenFraction
	if math.Abs(float64(total)-wantTotal) > wantTotal*0.05+2 {
		t.Errorf("written extents = %d, want ≈ %.0f", total, wantTotal)
	}
	if len(l.Cold) <= len(l.Hot) {
		t.Errorf("cold (%d) must dominate hot (%d) per the paper's premise", len(l.Cold), len(l.Hot))
	}
	for s := range seen {
		if s%int64(m.ExtentSectors) != 0 || s >= m.Sectors {
			t.Fatalf("extent start %d misaligned", s)
		}
	}
}

func TestColdExtentsWrittenOnlyDuringFill(t *testing.T) {
	m := smallModel()
	l := m.Layout()
	coldSet := map[int64]bool{}
	for _, s := range l.Cold {
		coldSet[s] = true
	}
	ext := int64(m.ExtentSectors)
	src := m.Source()
	fillEnd := time.Duration(m.FillSegments) * m.SegmentLen
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.Op != trace.Write {
			continue
		}
		if coldSet[e.LBA/ext*ext] && e.Time >= fillEnd {
			t.Fatalf("cold extent written at %v, after the fill phase ends at %v", e.Time, fillEnd)
		}
	}
}

func TestHotSetReceivesMostWrites(t *testing.T) {
	m := smallModel()
	l := m.Layout()
	hotSet := map[int64]bool{}
	for _, s := range l.Hot {
		hotSet[s] = true
	}
	ext := int64(m.ExtentSectors)
	src := m.Source()
	hot, postFill := 0, 0
	fillEnd := time.Duration(m.FillSegments) * m.SegmentLen
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.Op != trace.Write || e.Time < fillEnd {
			continue
		}
		postFill++
		if hotSet[e.LBA/ext*ext] {
			hot++
		}
	}
	frac := float64(hot) / float64(postFill)
	if math.Abs(frac-m.HotWriteRatio) > 0.05 {
		t.Errorf("hot write share = %.3f, want ≈ %.2f", frac, m.HotWriteRatio)
	}
}

func TestInfiniteSourceNeverEnds(t *testing.T) {
	m := smallModel()
	src := m.Infinite(99)
	var last time.Duration = -1
	for i := 0; i < 5000; i++ {
		e, ok := src.Next()
		if !ok {
			t.Fatal("infinite source ended")
		}
		if e.Time < last {
			t.Fatalf("time went backwards at event %d", i)
		}
		last = e.Time
	}
	if last <= 0 {
		t.Error("timeline did not advance")
	}
}

func TestInfiniteSourcesDifferBySeed(t *testing.T) {
	m := smallModel()
	a, b := m.Infinite(1), m.Infinite(2)
	// The deterministic fill prefix is identical by design; skip past it.
	fillEnd := time.Duration(m.FillSegments) * m.SegmentLen
	skip := func(s trace.Source) trace.Event {
		for {
			e, _ := s.Next()
			if e.Time >= fillEnd {
				return e
			}
		}
	}
	ea, eb := skip(a), skip(b)
	diff := ea != eb
	for i := 0; i < 200 && !diff; i++ {
		ea, _ = a.Next()
		eb, _ = b.Next()
		diff = ea != eb
	}
	if !diff {
		t.Error("different seeds produced identical streams after the fill")
	}
}

func TestInfiniteSourceStartsWithFill(t *testing.T) {
	m := smallModel()
	l := m.Layout()
	coldSet := map[int64]bool{}
	for _, s := range l.Cold {
		coldSet[s] = true
	}
	src := m.Infinite(5)
	fillEnd := time.Duration(m.FillSegments) * m.SegmentLen
	coldWrites := map[int64]bool{}
	for {
		e, _ := src.Next()
		if e.Time >= fillEnd {
			break
		}
		if e.Op == trace.Write {
			ext := e.LBA / int64(m.ExtentSectors) * int64(m.ExtentSectors)
			if coldSet[ext] {
				coldWrites[ext] = true
			}
		}
	}
	if len(coldWrites) != len(l.Cold) {
		t.Errorf("fill prefix wrote %d of %d cold extents", len(coldWrites), len(l.Cold))
	}
}

func TestPaperScaledKeepsClassesOnTinyDevices(t *testing.T) {
	m := PaperScaled(8192) // 4 MB of sectors
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	l := m.Layout()
	if len(l.Hot) < 1 || len(l.Cold) < 1 || len(l.Warm) < 1 {
		t.Errorf("tiny device lost classes: hot=%d warm=%d cold=%d", len(l.Hot), len(l.Warm), len(l.Cold))
	}
}

func TestUniformSourceShape(t *testing.T) {
	u := NewUniform(10_000, 3, 1, 8, 1)
	writes, total := 0, 20_000
	var last time.Duration = -1
	for i := 0; i < total; i++ {
		e, ok := u.Next()
		if !ok {
			t.Fatal("uniform source ended")
		}
		if e.Time < last {
			t.Fatal("time went backwards")
		}
		last = e.Time
		if e.LBA < 0 || e.LBA+int64(e.Count) > 10_000 || e.Count < 1 {
			t.Fatalf("bad event %+v", e)
		}
		if e.Op == trace.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(total)
	if frac < 0.72 || frac > 0.78 {
		t.Errorf("write fraction = %.3f, want ≈ 0.75", frac)
	}
	// 20k events at 4/s → ~5000 seconds.
	if last < 4000*time.Second || last > 6000*time.Second {
		t.Errorf("clock = %v, want ≈ 5000s", last)
	}
}

func TestUniformSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniform(0, 1, 1, 8, 1)
}
