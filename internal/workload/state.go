package workload

import (
	"fmt"
	"math/rand"
	"time"

	"flashswl/internal/trace"
	"flashswl/internal/wire"
)

// Seekable-state implementations (trace.Seekable) for the workload sources.
// Every source here is deterministic given its model and seed, so position
// records stay tiny: segment generators store which segment they stand in
// and how far into it; math/rand-backed sources store how many draws they
// made and replay them on restore (each call site draws with constant
// arguments, so the replayed sequence is identical — and the generators can
// stay on math/rand, preserving the byte-identical traces golden outputs
// depend on).

// SaveState implements trace.Seekable. The segment stream's position is
// (seg, pos): the next segment to load and the offset within the current
// one; cur and base are re-derived on restore.
func (s *seqSource) SaveState() ([]byte, error) {
	w := wire.NewWriter()
	w.U32(uint32(s.nseg))
	w.U32(uint32(s.seg))
	w.U64(uint64(s.pos))
	return w.Bytes(), nil
}

// RestoreState implements trace.Seekable.
func (s *seqSource) RestoreState(data []byte) error {
	r := wire.NewReader(data)
	nseg := int(r.U32())
	seg := int(r.U32())
	pos := int(r.U64())
	if err := r.Close(); err != nil {
		return fmt.Errorf("workload: segment source state: %w", err)
	}
	if nseg != s.nseg {
		return fmt.Errorf("workload: segment source state for %d segments, have %d", nseg, s.nseg)
	}
	if seg < 0 || seg > nseg || pos < 0 {
		return fmt.Errorf("workload: corrupt segment source state")
	}
	var cur []trace.Event
	var base time.Duration
	if seg > 0 {
		cur = s.m.segment(seg-1, &s.layout)
		base = time.Duration(seg-1) * s.m.SegmentLen
		if pos > len(cur) {
			return fmt.Errorf("workload: saved position %d beyond segment %d (%d events)",
				pos, seg-1, len(cur))
		}
	} else if pos != 0 {
		return fmt.Errorf("workload: saved position %d before the first segment", pos)
	}
	s.seg, s.pos, s.cur, s.base = seg, pos, cur, base
	return nil
}

// SaveState implements trace.Seekable for the infinite derived trace: the
// fill phase's position plus the resampler's.
func (s *infiniteSource) SaveState() ([]byte, error) {
	fillState, err := s.fill.SaveState()
	if err != nil {
		return nil, err
	}
	resState, err := s.resampler.SaveState()
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter()
	w.Bool(s.fillDone)
	w.Blob(fillState)
	w.Blob(resState)
	return w.Bytes(), nil
}

// RestoreState implements trace.Seekable.
func (s *infiniteSource) RestoreState(data []byte) error {
	r := wire.NewReader(data)
	fillDone := r.Bool()
	fillState := r.Blob()
	resState := r.Blob()
	if err := r.Close(); err != nil {
		return fmt.Errorf("workload: infinite source state: %w", err)
	}
	if err := s.fill.RestoreState(fillState); err != nil {
		return err
	}
	if err := s.resampler.RestoreState(resState); err != nil {
		return err
	}
	s.fillDone = fillDone
	return nil
}

// SaveState implements trace.Seekable: the stream position is simply how
// many events have been emitted; restore replays that many draws.
func (u *UniformSource) SaveState() ([]byte, error) {
	w := wire.NewWriter()
	w.I64(u.events)
	return w.Bytes(), nil
}

// RestoreState implements trace.Seekable. The receiver must have been built
// with the same shape and seed; replaying is O(events), which the uniform
// control workload's test-scale runs keep cheap.
func (u *UniformSource) RestoreState(data []byte) error {
	r := wire.NewReader(data)
	events := r.I64()
	if err := r.Close(); err != nil {
		return fmt.Errorf("workload: uniform source state: %w", err)
	}
	if events < 0 {
		return fmt.Errorf("workload: corrupt uniform source state")
	}
	u.rng = rand.New(rand.NewSource(u.seed))
	u.now = 0
	u.events = 0
	for i := int64(0); i < events; i++ {
		u.Next()
	}
	return nil
}
