package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// JSONLWriter streams events, wear samples, leveler episode spans, and a
// final metrics snapshot as JSON lines. Each line is one object
// distinguished by its "type" field:
//
//	{"type":"event","seq":7,"kind":"block_erased","block":12,...}
//	{"type":"sample","events":10000,"sim_ns":..., "mean":...,...}
//	{"type":"episode","seq":3,"sets":2,"erases":4,...}
//	{"type":"metrics","counters":{...},"gauges":{...},"histograms":{...}}
//
// Every event field is always present so consumers can decode into one flat
// struct; fields that do not apply to a kind hold -1 (addresses) or zero.
// Write errors are sticky: the first one is kept and later writes are
// dropped, so a full disk cannot abort a simulation mid-run. Call Flush at
// the end and check its error.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	seq int64
	err error
}

// NewJSONLWriter wraps w in a buffered JSON-lines encoder.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// EventRecord is the JSONL shape of one event line (exported so consumers
// and tests can decode the stream).
type EventRecord struct {
	Type    string `json:"type"` // "event"
	Seq     int64  `json:"seq"`
	Kind    string `json:"kind"`
	Block   int    `json:"block"`
	Page    int    `json:"page"`
	Pages   int    `json:"pages"`
	Forced  bool   `json:"forced"`
	Findex  int    `json:"findex"`
	Scan    int    `json:"scan"`
	Ecnt    int64  `json:"ecnt"`
	Fcnt    int    `json:"fcnt"`
	Sets    int    `json:"sets"`
	Skipped int    `json:"skipped"`
	Op      string `json:"op,omitempty"`
	Chip    int    `json:"chip"`
}

// SampleRecord is the JSONL shape of one wear-sample line.
type SampleRecord struct {
	Type string `json:"type"` // "sample"
	WearSample
}

// EpisodeRecord is the JSONL shape of one leveler episode span line.
type EpisodeRecord struct {
	Type string `json:"type"` // "episode"
	Episode
}

// MetricsRecord is the JSONL shape of the final metrics line.
type MetricsRecord struct {
	Type string `json:"type"` // "metrics"
	Snapshot
}

// Observe writes one event line. JSONLWriter implements EventSink.
func (w *JSONLWriter) Observe(e Event) {
	if w.err != nil {
		return
	}
	w.seq++
	w.write(EventRecord{
		Type: "event", Seq: w.seq, Kind: e.Kind.String(),
		Block: e.Block, Page: e.Page, Pages: e.Pages, Forced: e.Forced,
		Findex: e.Findex, Scan: e.Scan, Ecnt: e.Ecnt, Fcnt: e.Fcnt,
		Sets: e.Sets, Skipped: e.Skipped, Op: e.Op, Chip: e.Chip,
	})
}

// Sample writes one wear-sample line.
func (w *JSONLWriter) Sample(s WearSample) {
	w.write(SampleRecord{Type: "sample", WearSample: s})
}

// Episode writes one leveler episode span line.
func (w *JSONLWriter) Episode(ep Episode) {
	w.write(EpisodeRecord{Type: "episode", Episode: ep})
}

// Metrics writes the registry snapshot as one line.
func (w *JSONLWriter) Metrics(r *Registry) {
	w.write(MetricsRecord{Type: "metrics", Snapshot: r.Snapshot()})
}

func (w *JSONLWriter) write(v any) {
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(v)
}

// Events returns how many event lines were written.
func (w *JSONLWriter) Events() int64 { return w.seq }

// Flush drains the buffer and returns the first write error, if any.
func (w *JSONLWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}
