package obs

import "fmt"

// A Check is one named invariant over live system state. The function runs
// at every leveler decision point (and once at end of run); it returns nil
// while the invariant holds and a descriptive error when it is violated.
// Hosts wire concrete state — the chip, the translation layer, the BET —
// into the closure, which keeps this package free of upward dependencies.
type Check struct {
	Name string
	Fn   func() error
}

// Violation records one failed check.
type Violation struct {
	// Check is the violated check's name.
	Check string
	// At counts the checkpoints run when the violation fired (1-based), so
	// a failure can be correlated with the event stream.
	At int64
	// Err describes the violation.
	Err error
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s at checkpoint %d: %v", v.Check, v.At, v.Err)
}

// maxStoredViolations caps the remembered violations; a broken invariant
// fires at every subsequent checkpoint and would otherwise accumulate an
// unbounded slice. The total count keeps counting past the cap.
const maxStoredViolations = 32

// InvariantChecker is an EventSink that cross-checks live state every time
// the SW Leveler reaches a decision point (EvLevelerTriggered): the BET's
// fcnt against a popcount of its flag words, the leveler's ecnt against the
// chip's erases since the interval began, the translation layer's mapping
// and free-block accounting against the chip. It never mutates the system
// under test — checks are pure reads.
type InvariantChecker struct {
	checks      []Check
	violations  []Violation
	nviolations int64
	checkpoints int64
}

// NewInvariantChecker returns an empty checker; add invariants with Add.
func NewInvariantChecker() *InvariantChecker {
	return &InvariantChecker{}
}

// Add registers an invariant.
func (c *InvariantChecker) Add(name string, fn func() error) {
	c.checks = append(c.checks, Check{Name: name, Fn: fn})
}

// Observe runs every check when the event is a leveler decision point.
func (c *InvariantChecker) Observe(e Event) {
	if e.Kind != EvLevelerTriggered {
		return
	}
	c.RunChecks()
}

// RunChecks runs every check once, outside any event — hosts call it at end
// of run so runs whose leveler never triggered are still validated.
func (c *InvariantChecker) RunChecks() {
	c.checkpoints++
	for _, ch := range c.checks {
		if err := ch.Fn(); err != nil {
			c.nviolations++
			if len(c.violations) < maxStoredViolations {
				c.violations = append(c.violations, Violation{Check: ch.Name, At: c.checkpoints, Err: err})
			}
		}
	}
}

// Checkpoints returns how many times the check set has run.
func (c *InvariantChecker) Checkpoints() int64 { return c.checkpoints }

// ViolationCount returns the total violations observed, including any past
// the storage cap.
func (c *InvariantChecker) ViolationCount() int64 { return c.nviolations }

// Violations returns the stored violations (at most the first 32).
func (c *InvariantChecker) Violations() []Violation { return c.violations }
