package obs

import "testing"

// The span hot path is benchmarked in isolation here; the whole-stack
// events/sec comparison lives in internal/sim (BenchmarkRunnerTraced vs
// BenchmarkRunnerBare). SpanPair is the two-call cost of one leaf span,
// SpanTree a realistic four-deep write tree, and SpanTreeSampled the same
// tree under 1-in-32 host sampling — the monitoring profile, where all but
// the sampled trees cost only the inlined skip branches.

func BenchmarkSpanPair(b *testing.B) {
	t := NewTracer(1<<12, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := t.Begin(SpanErase, i&63, 0)
		t.End(id)
	}
}

func BenchmarkSpanTree(b *testing.B) {
	t := NewTracer(1<<12, nil)
	t.SetChipOf(func(blk int) int { return blk >> 4 })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := t.Begin(SpanHostWrite, -1, int64(i))
		tr := t.Begin(SpanTranslate, -1, int64(i))
		g := t.Begin(SpanGCMerge, i&63, 0)
		e := t.Begin(SpanErase, i&63, 0)
		t.End(e)
		t.End(g)
		t.End(tr)
		t.End(w)
	}
}

func BenchmarkSpanTreeSampled(b *testing.B) {
	t := NewTracer(1<<12, nil)
	t.SetSample(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := t.Begin(SpanHostWrite, -1, int64(i))
		tr := t.Begin(SpanTranslate, -1, int64(i))
		g := t.Begin(SpanGCMerge, i&63, 0)
		e := t.Begin(SpanErase, i&63, 0)
		t.End(e)
		t.End(g)
		t.End(tr)
		t.End(w)
	}
}
