package obs

import "testing"

// Zero-overhead guards: the obs layer promises that disabled observability
// costs one branch per emission site, never an allocation. These tests turn
// that promise into a regression check — testing.AllocsPerRun fails loudly
// the moment an Event composite or an episode helper starts escaping.

func TestDisabledEmissionAllocsNothing(t *testing.T) {
	var sink EventSink // nil: observability off
	allocs := testing.AllocsPerRun(1000, func() {
		if sink != nil {
			sink.Observe(Event{Kind: EvBlockErased, Block: 12, Page: -1, Findex: -1})
		}
	})
	if allocs != 0 {
		t.Errorf("disabled emission allocates %.1f times per op, want 0", allocs)
	}
}

func TestNilSinkEpisodeHelpersAllocNothing(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		BeginEpisode(nil, 100, 4)
		EndEpisode(nil, 104, 8, 4, 0)
	})
	if allocs != 0 {
		t.Errorf("nil-sink episode helpers allocate %.1f times per op, want 0", allocs)
	}
}

func TestMetricsSinkEmissionAllocsNothing(t *testing.T) {
	r := NewRegistry()
	sink := NewMetricsSink(r)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		sink.Observe(Event{Kind: EvBlockErased, Block: i & 255, Page: -1, Findex: -1, Forced: i&7 == 0})
		BeginEpisode(sink, int64(i), 4)
		EndEpisode(sink, int64(i)+2, 6, 2, 0)
	})
	if allocs != 0 {
		t.Errorf("metrics-sink emission allocates %.1f times per op, want 0", allocs)
	}
}
