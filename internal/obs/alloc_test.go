package obs

import "testing"

// Zero-overhead guards: the obs layer promises that disabled observability
// costs one branch per emission site, never an allocation. These tests turn
// that promise into a regression check — testing.AllocsPerRun fails loudly
// the moment an Event composite or an episode helper starts escaping.

func TestDisabledEmissionAllocsNothing(t *testing.T) {
	var sink EventSink // nil: observability off
	allocs := testing.AllocsPerRun(1000, func() {
		if sink != nil {
			sink.Observe(Event{Kind: EvBlockErased, Block: 12, Page: -1, Findex: -1})
		}
	})
	if allocs != 0 {
		t.Errorf("disabled emission allocates %.1f times per op, want 0", allocs)
	}
}

func TestNilSinkEpisodeHelpersAllocNothing(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		BeginEpisode(nil, 100, 4)
		EndEpisode(nil, 104, 8, 4, 0)
	})
	if allocs != 0 {
		t.Errorf("nil-sink episode helpers allocate %.1f times per op, want 0", allocs)
	}
}

func TestDisabledTracerAllocsNothing(t *testing.T) {
	var tr *Tracer // nil: tracing off
	allocs := testing.AllocsPerRun(1000, func() {
		w := tr.Begin(SpanHostWrite, -1, 9)
		gc := tr.Begin(SpanGCMerge, 3, 0)
		cp := tr.Begin(SpanLiveCopy, 3, 0)
		tr.EndPages(cp, 4)
		e := tr.Begin(SpanErase, 3, 0)
		tr.End(e)
		tr.End(gc)
		tr.EndArg(w, 1)
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f times per op, want 0", allocs)
	}
}

func TestEnabledTracerAllocsNothing(t *testing.T) {
	tr := NewTracer(256, nil)
	tr.SetChipOf(func(block int) int {
		if block < 0 {
			return -1
		}
		return block & 3
	})
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		w := tr.Begin(SpanHostWrite, -1, int64(i))
		gc := tr.Begin(SpanGCMerge, i&255, 0)
		cp := tr.Begin(SpanLiveCopy, i&255, 0)
		tr.EndPages(cp, i&15)
		e := tr.Begin(SpanErase, i&255, 0)
		tr.End(e)
		tr.End(gc)
		tr.End(w)
	})
	if allocs != 0 {
		t.Errorf("enabled tracing allocates %.1f times per span batch, want 0 (ring is preallocated)", allocs)
	}
}

func TestSampledTracerAllocsNothing(t *testing.T) {
	tr := NewTracer(256, nil)
	tr.SetSample(4) // exercises both the recorded and the skipped path
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		w := tr.Begin(SpanHostWrite, -1, int64(i))
		gc := tr.Begin(SpanGCMerge, i&255, 0)
		cp := tr.Begin(SpanLiveCopy, i&255, 0)
		tr.EndPages(cp, i&15)
		e := tr.Begin(SpanErase, i&255, 0)
		tr.End(e)
		tr.End(gc)
		tr.End(w)
	})
	if allocs != 0 {
		t.Errorf("sampled tracing allocates %.1f times per span batch, want 0", allocs)
	}
}

func TestMetricsSinkEmissionAllocsNothing(t *testing.T) {
	r := NewRegistry()
	sink := NewMetricsSink(r)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		sink.Observe(Event{Kind: EvBlockErased, Block: i & 255, Page: -1, Findex: -1, Forced: i&7 == 0})
		BeginEpisode(sink, int64(i), 4)
		EndEpisode(sink, int64(i)+2, 6, 2, 0)
	})
	if allocs != 0 {
		t.Errorf("metrics-sink emission allocates %.1f times per op, want 0", allocs)
	}
}
