package obs

import "math/bits"

// Causal span tracing. The event stream (obs.Event) answers "what happened";
// spans answer "on whose behalf": one host write opens a span, the
// translation layer opens a child under it, garbage collection another, and
// by the time a chip erase fires its span carries the whole ancestry —
// host_write → translate → gc_merge → live_copy → erase — so the erase is
// attributable to the operation that ultimately caused it. The leveler opens
// the same structure from the other side: swl_episode → scan → set_select →
// live_copy → erase. The paper's overhead claims are exactly this
// attribution, aggregated.
//
// The Tracer follows the obs contract: a nil *Tracer is a no-op costing one
// branch per call, and an enabled tracer allocates nothing per span — spans
// land in a preallocated ring (old spans are overwritten, never grown) and
// the open-span ancestry lives in a fixed-depth stack. Like every obs value
// it is confined to the emitting goroutine.

// SpanID identifies one span; IDs are assigned sequentially from 1, and 0
// means "no span" (the nil tracer hands it out, and End ignores it).
type SpanID uint64

// SpanKind identifies what stage of the stack a span covers.
type SpanKind uint8

const (
	// SpanHostWrite covers one host write as driven by the harness (Arg is
	// the logical page number).
	SpanHostWrite SpanKind = iota
	// SpanHostRead covers one host read (Arg is the logical page number).
	SpanHostRead
	// SpanTranslate covers the translation layer's handling of one host
	// write: mapping update, allocation, and any garbage collection it had
	// to run for headroom (Arg is the logical page number).
	SpanTranslate
	// SpanGCMerge covers the recycling of one block: live data moved out,
	// block erased (Block is the victim).
	SpanGCMerge
	// SpanLiveCopy covers the live-page copy phase of one recycling (Block
	// is the source block, Pages the pages copied).
	SpanLiveCopy
	// SpanErase covers one chip block erase, including retry and retirement
	// handling (Block is the block).
	SpanErase
	// SpanSWLEpisode covers one acting SWL-Procedure invocation, the span
	// twin of the EvEpisodeBegin/EvEpisodeEnd event pair.
	SpanSWLEpisode
	// SpanScan covers one block-set selection scan (Arg is the scan
	// distance in flags).
	SpanScan
	// SpanSetSelect covers the forced recycling of one selected block set
	// (Arg is the flag index).
	SpanSetSelect
	// SpanHostRequest covers one served block-device request from dequeue to
	// reply: the serving twin of SpanHostWrite/SpanHostRead, rooted at the
	// internal/serve actor rather than the trace harness (Arg is the start
	// LBA, Pages the sector count).
	SpanHostRequest
	// SpanQueueWait covers the time a served request spent in the actor's
	// bounded queue before being dequeued. Recorded retroactively via
	// Tracer.Observe, so its duration is only meaningful under a wall
	// TraceClock shared with the enqueuing goroutines.
	SpanQueueWait
	// SpanCacheHit covers a request satisfied from the write-back cache
	// without touching the translation layer (Arg is the logical page).
	SpanCacheHit
	// SpanCacheFill covers a cache miss filling a line from the device
	// below (Arg is the logical page).
	SpanCacheFill
	// SpanCacheWriteback covers one dirty line written back to the device —
	// on eviction or flush (Arg is the logical page, Pages the sectors
	// written, Block -1).
	SpanCacheWriteback

	numSpanKinds = int(SpanCacheWriteback) + 1
)

// String names the kind in snake_case, the form the trace export uses.
func (k SpanKind) String() string {
	switch k {
	case SpanHostWrite:
		return "host_write"
	case SpanHostRead:
		return "host_read"
	case SpanTranslate:
		return "translate"
	case SpanGCMerge:
		return "gc_merge"
	case SpanLiveCopy:
		return "live_copy"
	case SpanErase:
		return "erase"
	case SpanSWLEpisode:
		return "swl_episode"
	case SpanScan:
		return "scan"
	case SpanSetSelect:
		return "set_select"
	case SpanHostRequest:
		return "host_request"
	case SpanQueueWait:
		return "queue_wait"
	case SpanCacheHit:
		return "cache_hit"
	case SpanCacheFill:
		return "cache_fill"
	case SpanCacheWriteback:
		return "cache_writeback"
	default:
		return "span_kind_unknown"
	}
}

// SpanKindFromString maps a snake_case name back to its kind; ok is false
// for unknown names (trace files from future versions).
func SpanKindFromString(s string) (SpanKind, bool) {
	for k := SpanKind(0); int(k) < numSpanKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Span is one completed or in-flight stage of work. It is a plain value —
// recording one allocates nothing. End is 0 while the span is open.
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   SpanKind
	// Begin and End are clock readings (nanoseconds under a wall clock,
	// logical ticks under the default deterministic clock).
	Begin int64
	End   int64
	// Block is the physical block concerned, -1 when none; Chip its member
	// chip inside an array (0 on single-chip stacks, matching Event.Chip).
	Block int
	Chip  int
	// Pages is the size of a live-copy batch (SpanLiveCopy).
	Pages int
	// Arg is the kind-specific attribute: the logical page for host and
	// translate spans, the scan distance for SpanScan, the flag index for
	// SpanSetSelect.
	Arg int64
}

// Duration returns End-Begin, or 0 while the span is open.
func (s Span) Duration() int64 {
	if s.End == 0 {
		return 0
	}
	return s.End - s.Begin
}

// maxSpanDepth bounds the open-span ancestry stack. The stack's deepest real
// chain is host_write → translate → gc_merge → live_copy → translate-free
// program path → erase; 64 leaves room for pathological recursion without
// ever allocating.
const maxSpanDepth = 64

// latencyBuckets is the per-kind duration histogram resolution: bucket i
// counts durations d with 2^(i-1) <= d < 2^i (bucket 0 counts d == 0), so
// percentiles resolve to a factor of two at any magnitude.
const latencyBuckets = 64

// frame is one open span on the ancestry stack. Begin is duplicated from
// the ring slot so durations survive the slot being overwritten by a ring
// wrap while the span is still open.
type frame struct {
	id    SpanID
	kind  SpanKind
	begin int64
}

// stageAgg accumulates per-kind duration statistics as spans end.
type stageAgg struct {
	count   int64
	sum     int64
	max     int64
	buckets [latencyBuckets]int64
}

// skippedSpan is the ID Begin hands out inside a sampled-away host-op tree.
// Like SpanID 0 it records nothing; unlike 0 its End still balances the
// suppression depth, so the tracer knows when the skipped tree closes.
const skippedSpan = SpanID(1<<64 - 1)

// Tracer records causal spans into a fixed-size ring. The zero ID contract
// makes disabled tracing free: every method is a no-op on a nil receiver,
// Begin then hands out SpanID 0, and End(0) returns immediately.
type Tracer struct {
	ring   []Span
	mask   uint64 // len(ring)-1; the capacity is a power of two
	seq    uint64
	clock  func() int64
	tick   int64
	chipOf func(block int) int
	// sample records one in sample host-op trees (0 and 1 record all);
	// until counts down host roots to the next recorded one, and skip is
	// the open-span depth inside the tree currently being skipped. skip is
	// signed and unguarded on the hot path: an unbalanced skipped End can
	// only drive it negative, which Begin reads as "not skipping" and the
	// next skipped root overwrites with 1 — misuse degrades to a slightly
	// off sampling rate instead of corrupting the tracer.
	sample uint64
	until  uint64
	skip   int64
	stack  [maxSpanDepth]frame
	depth  int
	stats  [numSpanKinds]stageAgg
}

// NewTracer returns a tracer keeping the most recent capacity spans,
// rounded up to a power of two (minimum 1) so the hot path indexes the ring
// with a mask instead of a division. clock supplies timestamps — a wall
// clock for real latency profiles — and may be nil, in which case the
// tracer uses a deterministic logical tick that advances by one per
// Begin/End, so traced simulation runs stay bit-identical.
func NewTracer(capacity int, clock func() int64) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	pow2 := 1
	for pow2 < capacity {
		pow2 <<= 1
	}
	return &Tracer{ring: make([]Span, pow2), mask: uint64(pow2 - 1), clock: clock, until: 1}
}

// SetSample makes the tracer record one in n host-operation trees (trees
// rooted at a SpanHostWrite, SpanHostRead, or SpanHostRequest Begin at
// depth zero); the other
// n-1 are skipped wholesale, children included, at a cost of two predictable
// branches per skipped span. Leveler episodes and anything else beginning
// outside a host root are always recorded, so sampling thins the bulk host
// traffic without losing a single swl_episode attribution. n <= 1 records
// everything (the default). The countdown is deterministic — the first host
// root after construction is always recorded.
func (t *Tracer) SetSample(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.sample = uint64(n)
	t.until = 1
}

// SetChipOf installs the block → member-chip attribution function (an
// array's ChipOf); spans then carry the chip exactly as events do. Without
// it every span reports chip 0, the single-chip convention.
func (t *Tracer) SetChipOf(fn func(block int) int) {
	if t != nil {
		t.chipOf = fn
	}
}

// now reads the clock, or advances the deterministic tick.
//
//lint:hotpath span recording; see obs/alloc_test.go
func (t *Tracer) now() int64 {
	if t.clock != nil {
		return t.clock()
	}
	t.tick++
	return t.tick
}

// Begin opens a span of the given kind under the currently open span (the
// ancestry is a stack: the most recent unfinished Begin is the parent).
// Block is the physical block concerned or -1; arg the kind-specific
// attribute. It returns the span's ID — 0 on a nil tracer, skippedSpan
// inside a sampled-away tree; both are accepted and ignored by End. This
// wrapper stays within the inlining budget so the disabled and skipped
// cases cost only the branches.
//
//lint:hotpath span recording; see obs/alloc_test.go
func (t *Tracer) Begin(kind SpanKind, block int, arg int64) SpanID {
	if t == nil {
		return 0
	}
	if t.skip > 0 {
		t.skip++
		return skippedSpan
	}
	return t.record(kind, block, arg)
}

// record is Begin's slow half: the sampling decision and the actual span
// write. Split out so Begin itself inlines.
//
//lint:hotpath span recording; see obs/alloc_test.go
func (t *Tracer) record(kind SpanKind, block int, arg int64) SpanID {
	if t.sample > 1 && t.depth == 0 && (kind == SpanHostWrite || kind == SpanHostRead || kind == SpanHostRequest) {
		t.until--
		if t.until != 0 {
			t.skip = 1
			return skippedSpan
		}
		t.until = t.sample
	}
	t.seq++
	id := SpanID(t.seq)
	var parent SpanID
	if t.depth > 0 {
		parent = t.stack[t.depth-1].id
	}
	chip := 0
	if t.chipOf != nil {
		chip = t.chipOf(block)
	}
	begin := t.now()
	t.ring[(t.seq-1)&t.mask] = Span{
		ID: id, Parent: parent, Kind: kind,
		Begin: begin, Block: block, Chip: chip, Arg: arg,
	}
	if t.depth < maxSpanDepth {
		t.stack[t.depth] = frame{id: id, kind: kind, begin: begin}
		t.depth++
	}
	return id
}

// End closes the span. Ending span 0 (the nil tracer's handout) is a no-op,
// so callers never guard, and ending a skipped span just unwinds the
// sampling suppression. Ending a span whose descendants are still open
// closes them implicitly (error paths unwind through deferred parent Ends);
// their durations are then unaccounted rather than fabricated. Like Begin,
// the wrappers inline so the no-op cases cost only the branches.
//
//lint:hotpath span recording; see obs/alloc_test.go
func (t *Tracer) End(id SpanID) {
	if t == nil {
		return
	}
	if id == skippedSpan {
		t.skip--
		return
	}
	t.finish(id, -1, 0, false)
}

// EndPages closes the span and records its copy-batch size.
//
//lint:hotpath span recording; see obs/alloc_test.go
func (t *Tracer) EndPages(id SpanID, pages int) {
	if t == nil {
		return
	}
	if id == skippedSpan {
		t.skip--
		return
	}
	t.finish(id, pages, 0, false)
}

// EndArg closes the span and records its kind-specific attribute (the scan
// distance, known only once the scan finishes).
//
//lint:hotpath span recording; see obs/alloc_test.go
func (t *Tracer) EndArg(id SpanID, arg int64) {
	if t == nil {
		return
	}
	if id == skippedSpan {
		t.skip--
		return
	}
	t.finish(id, -1, arg, true)
}

//lint:hotpath span recording; see obs/alloc_test.go
func (t *Tracer) finish(id SpanID, pages int, arg int64, setArg bool) {
	if id == 0 {
		return // the nil tracer's handout; never guarded at call sites
	}
	end := t.now()
	var kind SpanKind
	var begin int64
	found := false
	for i := t.depth - 1; i >= 0; i-- {
		if t.stack[i].id == id {
			kind, begin, found = t.stack[i].kind, t.stack[i].begin, true
			t.depth = i // pop it and any orphaned descendants
			break
		}
	}
	slot := &t.ring[(uint64(id)-1)&t.mask]
	if slot.ID == id {
		slot.End = end
		if pages >= 0 {
			slot.Pages = pages
		}
		if setArg {
			slot.Arg = arg
		}
		if !found {
			kind, begin, found = slot.Kind, slot.Begin, true
		}
	}
	if !found {
		return // overwritten by a ring wrap and deeper than the stack kept
	}
	d := end - begin
	if d < 0 {
		d = 0
	}
	a := &t.stats[kind]
	a.count++
	a.sum += d
	if d > a.max {
		a.max = d
	}
	a.buckets[bits.Len64(uint64(d))%latencyBuckets]++
}

// Observe records an already-completed span with explicit begin and end
// clock readings, parented under the currently open span. It is how a stage
// whose duration elapsed before the recording goroutine saw it — a served
// request's queue wait — lands in the trace: the enqueuer stamps the begin
// reading from the same clock, and the dequeuing owner observes the span
// retroactively. The timestamps must come from the tracer's TraceClock (under
// the default deterministic tick pass equal values; the span then records
// order, not duration). Inside a sampled-away host tree the observation is
// skipped with the rest of the tree. Nil-safe like every Tracer method, and
// like them it must only be called from the goroutine that owns the tracer.
func (t *Tracer) Observe(kind SpanKind, block int, arg int64, begin, end int64) {
	if t == nil || t.skip > 0 {
		return
	}
	if end < begin {
		end = begin
	}
	t.seq++
	id := SpanID(t.seq)
	var parent SpanID
	if t.depth > 0 {
		parent = t.stack[t.depth-1].id
	}
	chip := 0
	if t.chipOf != nil {
		chip = t.chipOf(block)
	}
	t.ring[(t.seq-1)&t.mask] = Span{
		ID: id, Parent: parent, Kind: kind,
		Begin: begin, End: end, Block: block, Chip: chip, Arg: arg,
	}
	d := end - begin
	a := &t.stats[kind]
	a.count++
	a.sum += d
	if d > a.max {
		a.max = d
	}
	a.buckets[bits.Len64(uint64(d))%latencyBuckets]++
}

// Spans returns how many spans have been begun in total (including ones the
// ring has since overwritten). 0 on a nil tracer.
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	return int64(t.seq)
}

// Dropped returns how many spans the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	if d := int64(t.seq) - int64(len(t.ring)); d > 0 {
		return d
	}
	return 0
}

// TraceSnapshot is an immutable copy of the ring's retained spans, oldest
// first. Total counts every span ever begun and Dropped the ones the ring
// overwrote; Total - Dropped == len(Spans).
type TraceSnapshot struct {
	Spans   []Span `json:"spans"`
	Total   int64  `json:"total"`
	Dropped int64  `json:"dropped"`
}

// Snapshot copies the retained spans in chronological (ID) order. Nil-safe:
// a nil tracer yields an empty snapshot.
func (t *Tracer) Snapshot() *TraceSnapshot {
	return t.SnapshotRecent(0)
}

// SnapshotRecent is Snapshot limited to the most recent max spans (0 or
// negative means all retained). The monitor publishes a bounded recent
// window each sample rather than the whole ring.
func (t *Tracer) SnapshotRecent(max int) *TraceSnapshot {
	if t == nil {
		return &TraceSnapshot{}
	}
	kept := t.seq
	if c := uint64(len(t.ring)); kept > c {
		kept = c
	}
	if max > 0 && kept > uint64(max) {
		kept = uint64(max)
	}
	snap := &TraceSnapshot{Total: int64(t.seq), Dropped: t.Dropped(), Spans: make([]Span, 0, kept)}
	for id := t.seq - kept + 1; id <= t.seq; id++ {
		snap.Spans = append(snap.Spans, t.ring[(id-1)&t.mask])
	}
	return snap
}

// StageLatency summarizes one span kind's duration distribution: counts and
// sums are exact, the percentiles are upper bounds of the power-of-two
// bucket the quantile lands in. Durations are nanoseconds under a wall
// clock and logical ticks under the deterministic default.
type StageLatency struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MaxNs int64 `json:"max_ns"`
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// StageLatency returns the per-kind duration summaries for every kind that
// completed at least one span, keyed by the kind's snake_case name. Nil and
// span-free tracers return an empty (non-nil) map.
func (t *Tracer) StageLatency() map[string]StageLatency {
	out := map[string]StageLatency{}
	if t == nil {
		return out
	}
	for k := 0; k < numSpanKinds; k++ {
		a := &t.stats[k]
		if a.count == 0 {
			continue
		}
		out[SpanKind(k).String()] = StageLatency{
			Count: a.count,
			SumNs: a.sum,
			MaxNs: a.max,
			P50Ns: a.quantile(0.50),
			P99Ns: a.quantile(0.99),
		}
	}
	return out
}

// quantile returns the upper bound of the bucket the q-quantile lands in.
func (a *stageAgg) quantile(q float64) int64 {
	rank := int64(q * float64(a.count))
	if rank >= a.count {
		rank = a.count - 1
	}
	var seen int64
	for i, c := range a.buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return a.max
			}
			upper := int64(1)<<uint(i) - 1
			if upper > a.max {
				upper = a.max
			}
			return upper
		}
	}
	return a.max
}
