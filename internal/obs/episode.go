package obs

import "time"

// Leveler episode spans. The paper's overhead claims (Tables 5–8, Figures
// 6–7) are end-of-run aggregates; an episode span turns them into
// per-invocation traces: one record per SWL-Procedure invocation that acted,
// bracketing everything the stack emitted on its behalf — block-set
// selections, forced erases, live-page copies, BET resets — with the
// simulated time it covered.
//
// The emitting side is two nil-safe helpers (BeginEpisode, EndEpisode) the
// leveler calls around its working loop; the assembling side is an
// EpisodeBuilder, an EventSink that folds the event stream between the two
// markers into an Episode value. Splitting the two keeps the leveler free of
// cost attribution it cannot see: live-page copies are reported by the
// translation layer's cleaner, not by the leveler, and only the stream view
// can pin them to the episode.

// BeginEpisode emits an EvEpisodeBegin event carrying the leveler's
// unevenness state at entry. It is a no-op on a nil sink, so disabled
// observability costs one branch.
//
//lint:hotpath episode emission; see obs/alloc_test.go
func BeginEpisode(sink EventSink, ecnt int64, fcnt int) {
	if sink == nil {
		return
	}
	sink.Observe(Event{Kind: EvEpisodeBegin, Block: -1, Page: -1, Findex: -1, Ecnt: ecnt, Fcnt: fcnt})
}

// EndEpisode emits an EvEpisodeEnd event carrying the unevenness state at
// exit and the invocation's block-set counts. It is a no-op on a nil sink.
//
//lint:hotpath episode emission; see obs/alloc_test.go
func EndEpisode(sink EventSink, ecnt int64, fcnt int, sets, skipped int) {
	if sink == nil {
		return
	}
	sink.Observe(Event{Kind: EvEpisodeEnd, Block: -1, Page: -1, Findex: -1, Ecnt: ecnt, Fcnt: fcnt, Sets: sets, Skipped: skipped})
}

// Episode is one assembled SWL-Procedure invocation span: the unevenness
// state it entered and left with, the simulated time it covered, and the
// cost attributed to it from the event stream while the span was open.
type Episode struct {
	// Seq numbers episodes from 1 in stream order.
	Seq int64 `json:"seq"`
	// SimStart and SimEnd bracket the span in simulated time (equal when
	// the host provided no clock or the span completed within one event).
	SimStart time.Duration `json:"sim_start_ns"`
	SimEnd   time.Duration `json:"sim_end_ns"`
	// EcntBefore/FcntBefore and EcntAfter/FcntAfter are the leveler's
	// unevenness state at the span's boundaries.
	EcntBefore int64 `json:"ecnt_before"`
	FcntBefore int   `json:"fcnt_before"`
	EcntAfter  int64 `json:"ecnt_after"`
	FcntAfter  int   `json:"fcnt_after"`
	// Sets and Skipped count block sets recycled and skipped; Resets counts
	// BET resetting intervals completed inside the span.
	Sets    int `json:"sets"`
	Skipped int `json:"skipped"`
	Resets  int `json:"resets"`
	// Scan sums the cyclic-scan distances of every selection in the span.
	Scan int `json:"scan"`
	// Erases and CopiedPages are the attributed cost: every block erase and
	// live-page copy the stack reported while the span was open. The Forced
	// variants count the share explicitly marked as done on the leveler's
	// behalf (watermark GC triggered mid-span accounts for the difference).
	Erases            int64 `json:"erases"`
	ForcedErases      int64 `json:"forced_erases"`
	CopiedPages       int64 `json:"copied_pages"`
	ForcedCopiedPages int64 `json:"forced_copied_pages"`
	// Retired counts blocks withdrawn from service during the span.
	Retired int `json:"retired"`
}

// SimDuration returns the simulated time the span covered.
func (ep Episode) SimDuration() time.Duration { return ep.SimEnd - ep.SimStart }

// EpisodeBuilder assembles Episode records from the event stream: it opens a
// span on EvEpisodeBegin, attributes every erase/copy/reset/retirement event
// to the open span, and delivers the completed Episode on EvEpisodeEnd.
// Like every obs value it is confined to the emitting goroutine.
type EpisodeBuilder struct {
	now       func() time.Duration
	onEpisode func(Episode)
	cur       Episode
	open      bool
	seq       int64
}

// NewEpisodeBuilder returns a builder delivering completed episodes to
// onEpisode. now supplies the simulated clock for the span boundaries and
// may be nil (spans then carry zero durations).
func NewEpisodeBuilder(now func() time.Duration, onEpisode func(Episode)) *EpisodeBuilder {
	return &EpisodeBuilder{now: now, onEpisode: onEpisode}
}

// Episodes returns how many spans have completed.
func (b *EpisodeBuilder) Episodes() int64 { return b.seq }

// Observe implements EventSink.
//
//lint:hotpath episode assembly runs on the emission path; see obs/alloc_test.go
func (b *EpisodeBuilder) Observe(e Event) {
	switch e.Kind {
	case EvEpisodeBegin:
		b.seq++
		b.cur = Episode{Seq: b.seq, EcntBefore: e.Ecnt, FcntBefore: e.Fcnt}
		if b.now != nil {
			b.cur.SimStart = b.now()
			b.cur.SimEnd = b.cur.SimStart
		}
		b.open = true
	case EvEpisodeEnd:
		if !b.open {
			return // unmatched end: drop rather than fabricate a span
		}
		b.cur.EcntAfter, b.cur.FcntAfter = e.Ecnt, e.Fcnt
		b.cur.Sets, b.cur.Skipped = e.Sets, e.Skipped
		if b.now != nil {
			b.cur.SimEnd = b.now()
		}
		b.open = false
		if b.onEpisode != nil {
			b.onEpisode(b.cur)
		}
	default:
		if !b.open {
			return
		}
		switch e.Kind {
		case EvBlockErased:
			b.cur.Erases++
			if e.Forced {
				b.cur.ForcedErases++
			}
		case EvPagesCopied:
			b.cur.CopiedPages += int64(e.Pages)
			if e.Forced {
				b.cur.ForcedCopiedPages += int64(e.Pages)
			}
		case EvLevelerTriggered:
			b.cur.Scan += e.Scan
		case EvBETReset:
			b.cur.Resets++
		case EvBlockRetired:
			b.cur.Retired++
		}
	}
}
