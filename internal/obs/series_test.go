package obs

import "testing"

func TestSeriesRecorderInterval(t *testing.T) {
	r := NewSeriesRecorder(5000)
	if r.Interval() != 5000 {
		t.Errorf("interval = %d", r.Interval())
	}
	for _, tc := range []struct {
		events int64
		due    bool
	}{{0, false}, {1, false}, {4999, false}, {5000, true}, {5001, false}, {10_000, true}} {
		if got := r.Due(tc.events); got != tc.due {
			t.Errorf("Due(%d) = %v, want %v", tc.events, got, tc.due)
		}
	}
}

func TestSeriesRecorderDefaultsInterval(t *testing.T) {
	for _, interval := range []int64{0, -1, -5000} {
		r := NewSeriesRecorder(interval)
		if r.Interval() != DefaultSampleInterval {
			t.Errorf("NewSeriesRecorder(%d).Interval() = %d, want %d", interval, r.Interval(), DefaultSampleInterval)
		}
	}
}

func TestSeriesRecorderCollects(t *testing.T) {
	r := NewSeriesRecorder(10)
	if _, ok := r.Last(); ok {
		t.Error("Last() on empty recorder reported a sample")
	}
	r.Add(WearSample{Events: 10, MeanErase: 1})
	r.Add(WearSample{Events: 20, MeanErase: 2})
	last, ok := r.Last()
	if !ok || last.Events != 20 {
		t.Errorf("Last() = %+v, %v", last, ok)
	}
	s := r.Samples()
	if len(s) != 2 || s[0].Events != 10 || s[1].Events != 20 {
		t.Errorf("Samples() = %+v", s)
	}
}
