package obs

import (
	"testing"
	"time"
)

func TestEpisodeHelpersNilSafe(t *testing.T) {
	// Must not panic.
	BeginEpisode(nil, 10, 2)
	EndEpisode(nil, 12, 4, 2, 0)
}

func TestEpisodeHelpersEmitMarkers(t *testing.T) {
	var got []Event
	sink := SinkFunc(func(e Event) { got = append(got, e) })
	BeginEpisode(sink, 100, 5)
	EndEpisode(sink, 104, 9, 4, 1)
	if len(got) != 2 {
		t.Fatalf("got %d events, want 2", len(got))
	}
	if got[0].Kind != EvEpisodeBegin || got[0].Ecnt != 100 || got[0].Fcnt != 5 {
		t.Errorf("begin event = %+v", got[0])
	}
	if got[1].Kind != EvEpisodeEnd || got[1].Ecnt != 104 || got[1].Fcnt != 9 ||
		got[1].Sets != 4 || got[1].Skipped != 1 {
		t.Errorf("end event = %+v", got[1])
	}
}

func TestEpisodeBuilderAssemblesSpan(t *testing.T) {
	clock := time.Duration(0)
	var done []Episode
	b := NewEpisodeBuilder(func() time.Duration { return clock }, func(ep Episode) { done = append(done, ep) })

	clock = 10 * time.Second
	b.Observe(Event{Kind: EvEpisodeBegin, Ecnt: 400, Fcnt: 4})
	b.Observe(Event{Kind: EvLevelerTriggered, Findex: 7, Scan: 3, Ecnt: 400, Fcnt: 4})
	b.Observe(Event{Kind: EvBlockErased, Block: 7, Forced: true})
	b.Observe(Event{Kind: EvBlockErased, Block: 9})
	b.Observe(Event{Kind: EvPagesCopied, Block: 7, Pages: 12, Forced: true})
	b.Observe(Event{Kind: EvPagesCopied, Block: 9, Pages: 5})
	b.Observe(Event{Kind: EvBETReset, Findex: 2})
	b.Observe(Event{Kind: EvBlockRetired, Block: 9})
	clock = 25 * time.Second
	b.Observe(Event{Kind: EvEpisodeEnd, Ecnt: 402, Fcnt: 6, Sets: 1, Skipped: 0})

	if len(done) != 1 {
		t.Fatalf("got %d episodes, want 1", len(done))
	}
	ep := done[0]
	if ep.Seq != 1 {
		t.Errorf("seq = %d", ep.Seq)
	}
	if ep.SimStart != 10*time.Second || ep.SimEnd != 25*time.Second || ep.SimDuration() != 15*time.Second {
		t.Errorf("span times = %v..%v", ep.SimStart, ep.SimEnd)
	}
	if ep.EcntBefore != 400 || ep.FcntBefore != 4 || ep.EcntAfter != 402 || ep.FcntAfter != 6 {
		t.Errorf("unevenness state = %+v", ep)
	}
	if ep.Erases != 2 || ep.ForcedErases != 1 {
		t.Errorf("erases = %d forced %d, want 2/1", ep.Erases, ep.ForcedErases)
	}
	if ep.CopiedPages != 17 || ep.ForcedCopiedPages != 12 {
		t.Errorf("copies = %d forced %d, want 17/12", ep.CopiedPages, ep.ForcedCopiedPages)
	}
	if ep.Scan != 3 || ep.Resets != 1 || ep.Retired != 1 || ep.Sets != 1 {
		t.Errorf("attribution = %+v", ep)
	}
	if b.Episodes() != 1 {
		t.Errorf("Episodes() = %d", b.Episodes())
	}
}

func TestEpisodeBuilderIgnoresEventsOutsideSpans(t *testing.T) {
	var done []Episode
	b := NewEpisodeBuilder(nil, func(ep Episode) { done = append(done, ep) })

	// Cost outside any span is not attributed; an unmatched end is dropped.
	b.Observe(Event{Kind: EvBlockErased, Block: 1})
	b.Observe(Event{Kind: EvEpisodeEnd, Ecnt: 10, Fcnt: 1})
	if len(done) != 0 {
		t.Fatalf("fabricated %d episodes from an unmatched end", len(done))
	}

	b.Observe(Event{Kind: EvEpisodeBegin, Ecnt: 20, Fcnt: 2})
	b.Observe(Event{Kind: EvBlockErased, Block: 2})
	b.Observe(Event{Kind: EvEpisodeEnd, Ecnt: 21, Fcnt: 3, Sets: 1})
	if len(done) != 1 {
		t.Fatalf("got %d episodes, want 1", len(done))
	}
	if done[0].Erases != 1 {
		t.Errorf("pre-span erase leaked into the episode: %+v", done[0])
	}
	if done[0].SimStart != 0 || done[0].SimEnd != 0 {
		t.Errorf("nil clock must yield zero span times, got %v..%v", done[0].SimStart, done[0].SimEnd)
	}
}

func TestEpisodeBuilderNumbersConsecutiveSpans(t *testing.T) {
	var seqs []int64
	b := NewEpisodeBuilder(nil, func(ep Episode) { seqs = append(seqs, ep.Seq) })
	for i := 0; i < 3; i++ {
		b.Observe(Event{Kind: EvEpisodeBegin})
		b.Observe(Event{Kind: EvEpisodeEnd})
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Errorf("seqs = %v", seqs)
	}
}

func TestMetricsSinkCountsEpisodes(t *testing.T) {
	r := NewRegistry()
	sink := NewMetricsSink(r)
	BeginEpisode(sink, 10, 1)
	EndEpisode(sink, 12, 3, 2, 0)
	BeginEpisode(sink, 30, 1)
	EndEpisode(sink, 45, 9, 8, 1)
	snap := r.Snapshot()
	if got := snap.Counters[MetricEpisodes]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricEpisodes, got)
	}
	h := snap.Histograms[MetricEpisodeSets]
	if h.Count != 2 || h.Sum != 10 {
		t.Errorf("%s count=%d sum=%d, want 2/10", MetricEpisodeSets, h.Count, h.Sum)
	}
}
