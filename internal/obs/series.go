package obs

import "time"

// WearSample is one point of a wear trajectory: the erase-count
// distribution summary plus the leveler's unevenness state, taken every N
// trace events by the simulation harness. A run's samples form the
// time-series behind the paper's Figures 3–6 — trajectories, not endpoints.
type WearSample struct {
	// Events is the trace events consumed when the sample was taken.
	Events int64 `json:"events"`
	// SimTime is the simulated time covered.
	SimTime time.Duration `json:"sim_ns"`
	// MeanErase, StdDevErase, MinErase, and MaxErase summarize the
	// per-block erase-count distribution.
	MeanErase   float64 `json:"mean"`
	StdDevErase float64 `json:"stddev"`
	MinErase    int     `json:"min"`
	MaxErase    int     `json:"max"`
	// Erases is the chip's total successful erases so far.
	Erases int64 `json:"erases"`
	// WornBlocks counts blocks past their endurance; FreeBlocks is the
	// translation layer's free pool.
	WornBlocks int `json:"worn"`
	FreeBlocks int `json:"free"`
	// Ecnt, Fcnt, and Unevenness snapshot the SW Leveler (zero without
	// one): erases this resetting interval, flags set, and ecnt/fcnt.
	Ecnt       int64   `json:"ecnt"`
	Fcnt       int     `json:"fcnt"`
	Unevenness float64 `json:"unevenness"`
}
