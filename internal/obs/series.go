package obs

import "time"

// WearSample is one point of a wear trajectory: the erase-count
// distribution summary plus the leveler's unevenness state, taken every N
// trace events by the simulation harness. A run's samples form the
// time-series behind the paper's Figures 3–6 — trajectories, not endpoints.
type WearSample struct {
	// Events is the trace events consumed when the sample was taken.
	Events int64 `json:"events"`
	// SimTime is the simulated time covered.
	SimTime time.Duration `json:"sim_ns"`
	// MeanErase, StdDevErase, MinErase, and MaxErase summarize the
	// per-block erase-count distribution.
	MeanErase   float64 `json:"mean"`
	StdDevErase float64 `json:"stddev"`
	MinErase    int     `json:"min"`
	MaxErase    int     `json:"max"`
	// Erases is the chip's total successful erases so far.
	Erases int64 `json:"erases"`
	// WornBlocks counts blocks past their endurance; FreeBlocks is the
	// translation layer's free pool.
	WornBlocks int `json:"worn"`
	FreeBlocks int `json:"free"`
	// Ecnt, Fcnt, and Unevenness snapshot the SW Leveler (zero without
	// one): erases this resetting interval, flags set, and ecnt/fcnt.
	Ecnt       int64   `json:"ecnt"`
	Fcnt       int     `json:"fcnt"`
	Unevenness float64 `json:"unevenness"`
}

// DefaultSampleInterval is the wear-sampling cadence (in trace events) hosts
// fall back to when sampling is requested without an explicit interval.
const DefaultSampleInterval = 10_000

// SeriesRecorder accumulates a wear trajectory at a configurable cadence.
// The recorder owns the interval — hosts ask Due at each trace event and
// Add the sample they build — so every front end (swlsim -sample,
// experiments -samples) plumbs its flag into one place instead of hardcoding
// a cadence. Like every obs value it is confined to one goroutine.
type SeriesRecorder struct {
	interval int64
	samples  []WearSample
}

// NewSeriesRecorder returns a recorder sampling every interval trace events;
// an interval < 1 falls back to DefaultSampleInterval.
func NewSeriesRecorder(interval int64) *SeriesRecorder {
	if interval < 1 {
		interval = DefaultSampleInterval
	}
	return &SeriesRecorder{interval: interval}
}

// Interval returns the sampling cadence in trace events.
func (r *SeriesRecorder) Interval() int64 { return r.interval }

// Due reports whether a sample should be taken after consuming the given
// total of trace events.
func (r *SeriesRecorder) Due(events int64) bool {
	return events > 0 && events%r.interval == 0
}

// Add appends one sample to the trajectory.
func (r *SeriesRecorder) Add(s WearSample) { r.samples = append(r.samples, s) }

// Samples returns the trajectory recorded so far.
func (r *SeriesRecorder) Samples() []WearSample { return r.samples }

// Last returns the most recent sample, if any.
func (r *SeriesRecorder) Last() (WearSample, bool) {
	if len(r.samples) == 0 {
		return WearSample{}, false
	}
	return r.samples[len(r.samples)-1], true
}
