package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", 1, 2)
	c.Inc()
	c.Add(5)
	g.Set(7)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must stay zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("erases")
	c.Inc()
	c.Add(2)
	if r.Counter("erases") != c {
		t.Fatal("counter not interned by name")
	}
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("free")
	g.Set(9)
	g.Set(4)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	h := r.Histogram("batch", 1, 4, 16)
	for _, v := range []int64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// Buckets: <=1, <=4, <=16, overflow.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if h.Count() != 8 || h.Sum() != 1045 {
		t.Fatalf("count=%d sum=%d, want 8/1045", h.Count(), h.Sum())
	}
}

func TestCombineAndMultiSink(t *testing.T) {
	if Combine(nil, nil) != nil {
		t.Fatal("combining nils must yield nil")
	}
	var got []EventKind
	one := SinkFunc(func(e Event) { got = append(got, e.Kind) })
	if s := Combine(nil, one); s == nil {
		t.Fatal("single sink lost")
	} else {
		s.Observe(Event{Kind: EvBETReset})
	}
	var n int
	two := Combine(one, SinkFunc(func(Event) { n++ }))
	two.Observe(Event{Kind: EvBlockErased})
	if len(got) != 2 || got[0] != EvBETReset || got[1] != EvBlockErased || n != 1 {
		t.Fatalf("fan-out wrong: kinds=%v n=%d", got, n)
	}
}

func TestMetricsSink(t *testing.T) {
	r := NewRegistry()
	s := NewMetricsSink(r)
	s.Observe(Event{Kind: EvBlockErased, Block: 1})
	s.Observe(Event{Kind: EvBlockErased, Block: 2, Forced: true})
	s.Observe(Event{Kind: EvPagesCopied, Block: 2, Pages: 7})
	s.Observe(Event{Kind: EvLevelerTriggered, Findex: 3, Scan: 5})
	s.Observe(Event{Kind: EvBETReset})
	s.Observe(Event{Kind: EvBlockRetired, Block: 9})
	s.Observe(Event{Kind: EvFaultInjected, Block: 4, Op: "program"})
	snap := r.Snapshot()
	wants := map[string]int64{
		MetricErases:       2,
		MetricForcedErases: 1,
		MetricCopiedPages:  7,
		MetricTriggers:     1,
		MetricBETResets:    1,
		MetricRetired:      1,
		MetricFaults:       1,
	}
	for name, want := range wants {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Histograms[MetricCopyBatches].Count != 1 || snap.Histograms[MetricScanLengths].Count != 1 {
		t.Fatal("histograms not fed")
	}
}

func TestJSONLStreamDecodes(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Observe(Event{Kind: EvBlockErased, Block: 12, Page: -1, Findex: -1})
	w.Observe(Event{Kind: EvFaultInjected, Block: 3, Page: 4, Findex: -1, Op: "erase"})
	w.Sample(WearSample{Events: 100, SimTime: 2 * time.Second, MeanErase: 1.5, MaxErase: 3})
	r := NewRegistry()
	r.Counter(MetricErases).Add(12)
	w.Metrics(r)
	if w.Events() != 2 {
		t.Fatalf("events written = %d, want 2", w.Events())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("undecodable line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, probe.Type)
		switch probe.Type {
		case "event":
			var e EventRecord
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatal(err)
			}
			if e.Seq == 0 || e.Kind == "" {
				t.Fatalf("event line missing seq/kind: %+v", e)
			}
		case "sample":
			var s SampleRecord
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				t.Fatal(err)
			}
			if s.Events != 100 || s.SimTime != 2*time.Second {
				t.Fatalf("sample round-trip: %+v", s)
			}
		case "metrics":
			var m MetricsRecord
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				t.Fatal(err)
			}
			if m.Counters[MetricErases] != 12 {
				t.Fatalf("metrics round-trip: %+v", m)
			}
		}
	}
	if strings.Join(kinds, ",") != "event,event,sample,metrics" {
		t.Fatalf("line order = %v", kinds)
	}
}

func TestInvariantChecker(t *testing.T) {
	c := NewInvariantChecker()
	healthy := 0
	c.Add("always-ok", func() error { healthy++; return nil })
	broken := errors.New("fcnt drifted")
	armed := false
	c.Add("sometimes-bad", func() error {
		if armed {
			return broken
		}
		return nil
	})

	c.Observe(Event{Kind: EvBlockErased}) // not a checkpoint
	c.Observe(Event{Kind: EvLevelerTriggered})
	armed = true
	c.Observe(Event{Kind: EvLevelerTriggered})
	c.RunChecks() // end-of-run sweep

	if c.Checkpoints() != 3 {
		t.Fatalf("checkpoints = %d, want 3", c.Checkpoints())
	}
	if healthy != 3 {
		t.Fatalf("healthy check ran %d times, want 3", healthy)
	}
	if c.ViolationCount() != 2 || len(c.Violations()) != 2 {
		t.Fatalf("violations = %d stored %d, want 2/2", c.ViolationCount(), len(c.Violations()))
	}
	v := c.Violations()[0]
	if v.Check != "sometimes-bad" || v.At != 2 || !errors.Is(v.Err, broken) {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "checkpoint 2") {
		t.Fatalf("violation string = %q", v.String())
	}
}

func TestInvariantCheckerCapsStoredViolations(t *testing.T) {
	c := NewInvariantChecker()
	c.Add("bad", func() error { return errors.New("no") })
	for i := 0; i < 100; i++ {
		c.Observe(Event{Kind: EvLevelerTriggered})
	}
	if c.ViolationCount() != 100 {
		t.Fatalf("count = %d, want 100", c.ViolationCount())
	}
	if len(c.Violations()) != maxStoredViolations {
		t.Fatalf("stored = %d, want %d", len(c.Violations()), maxStoredViolations)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvBlockErased, EvPagesCopied, EvLevelerTriggered, EvBETReset, EvBlockRetired, EvFaultInjected}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d: bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "event_kind_99" {
		t.Fatalf("unknown kind name = %q", EventKind(99).String())
	}
}

// BenchmarkDisabledEmission measures the disabled path a driver hot loop
// pays: one nil check. It must not allocate.
func BenchmarkDisabledEmission(b *testing.B) {
	var sink EventSink
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sink != nil {
			sink.Observe(Event{Kind: EvBlockErased, Block: i})
		}
	}
}

// BenchmarkMetricsSinkEmission measures the enabled path into the registry.
func BenchmarkMetricsSinkEmission(b *testing.B) {
	r := NewRegistry()
	sink := NewMetricsSink(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink.Observe(Event{Kind: EvBlockErased, Block: i & 255, Forced: i&7 == 0})
	}
}
