package promtext

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flashswl/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden exposition file")

// snapshotFixture exercises the format's corner cases: unsorted insertion
// order, a name needing sanitization, a histogram with its +Inf bucket, and
// label values needing escaping.
func snapshotFixture() obs.Snapshot {
	r := obs.NewRegistry()
	r.Counter("erases_total").Add(1234)
	r.Counter("copied_pages_total").Add(567)
	r.Counter("9leading.digit-total").Inc()
	r.Gauge("free_blocks").Set(42)
	h := r.Histogram("scan_distance", 1, 2, 4, 8)
	for _, v := range []int64{0, 1, 1, 3, 5, 100} {
		h.Observe(v)
	}
	return r.Snapshot()
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestWriteGolden(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, snapshotFixture(),
		Label{Name: "layer", Value: "FTL"},
		Label{Name: "cmd", Value: `quo"te\slash` + "\nnewline"},
	)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	golden(t, "exposition.golden", buf.Bytes())
}

func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	snap := snapshotFixture()
	if err := Write(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two encodings of one snapshot differ")
	}
}

func TestWriteHistogramShape(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, snapshotFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative buckets: le=1 counts {0,1,1}, le=2 adds nothing, le=4
	// adds {3}, le=8 adds {5}, +Inf adds {100}.
	for _, want := range []string{
		`scan_distance_bucket{le="1"} 3`,
		`scan_distance_bucket{le="2"} 3`,
		`scan_distance_bucket{le="4"} 4`,
		`scan_distance_bucket{le="8"} 5`,
		`scan_distance_bucket{le="+Inf"} 6`,
		`scan_distance_sum 110`,
		`scan_distance_count 6`,
		"# TYPE scan_distance histogram",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}

func TestWriteSample(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSample(&buf, "run_fraction", "gauge", 0.25, Label{Name: "cmd", Value: "swlsim"}); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE run_fraction gauge\nrun_fraction{cmd=\"swlsim\"} 0.25\n"
	if buf.String() != want {
		t.Errorf("WriteSample = %q, want %q", buf.String(), want)
	}
}

func TestSanitizeName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"erases_total", "erases_total"},
		{"9lives", "_9lives"},
		{"a.b-c d", "a_b_c_d"},
		{"", "_"},
		{"ok:colon", "ok:colon"},
	} {
		if got := SanitizeName(tc.in); got != tc.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("EscapeLabel = %q", got)
	}
}
