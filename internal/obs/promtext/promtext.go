// Package promtext renders an obs metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` header per metric, one
// sample line per value, histograms expanded into cumulative `_bucket`
// series with the mandatory `+Inf` bucket plus `_sum` and `_count`. Output
// is deterministic — metrics sorted by name, labels by label name — so
// scrapes and golden tests see byte-identical encodings of equal snapshots.
//
// The package is an encoder only: it renders any obs.Snapshot to any
// io.Writer and knows nothing about HTTP. internal/monitor serves it.
package promtext

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"

	"flashswl/internal/obs"
)

// ContentType is the exposition format's HTTP content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one constant label applied to every rendered sample.
type Label struct {
	Name, Value string
}

// Write renders the snapshot. The given labels are attached to every sample
// (histogram buckets additionally carry `le`). It returns the first write
// error.
func Write(w io.Writer, snap obs.Snapshot, labels ...Label) error {
	bw := bufio.NewWriter(w)
	labels = sortedLabels(labels)

	for _, name := range sortedKeys(snap.Counters) {
		writeType(bw, SanitizeName(name), "counter")
		writeSample(bw, SanitizeName(name), labels, "", float64(snap.Counters[name]))
	}
	for _, name := range sortedKeys(snap.Gauges) {
		writeType(bw, SanitizeName(name), "gauge")
		writeSample(bw, SanitizeName(name), labels, "", float64(snap.Gauges[name]))
	}
	hnames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := snap.Histograms[name]
		sane := SanitizeName(name)
		writeType(bw, sane, "histogram")
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			writeSample(bw, sane+"_bucket", labels, formatLe(bound), float64(cum))
		}
		writeSample(bw, sane+"_bucket", labels, "+Inf", float64(h.Count))
		writeSample(bw, sane+"_sum", labels, "", float64(h.Sum))
		writeSample(bw, sane+"_count", labels, "", float64(h.Count))
	}
	return bw.Flush()
}

// WriteSample renders one free-standing sample line with the given type
// header ("gauge", "counter", or "" for none) — the hook hosts use to expose
// values that live outside an obs.Registry, such as run progress.
func WriteSample(w io.Writer, name, typ string, value float64, labels ...Label) error {
	bw := bufio.NewWriter(w)
	sane := SanitizeName(name)
	if typ != "" {
		writeType(bw, sane, typ)
	}
	writeSample(bw, sane, sortedLabels(labels), "", value)
	return bw.Flush()
}

func writeType(w *bufio.Writer, name, typ string) {
	w.WriteString("# TYPE ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(typ)
	w.WriteByte('\n')
}

// writeSample renders `name{labels,le="..."} value`. le == "" omits the le
// label.
func writeSample(w *bufio.Writer, name string, labels []Label, le string, value float64) {
	w.WriteString(name)
	if len(labels) > 0 || le != "" {
		w.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(SanitizeName(l.Name))
			w.WriteString(`="`)
			w.WriteString(EscapeLabel(l.Value))
			w.WriteByte('"')
		}
		if le != "" {
			if !first {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	w.WriteByte('\n')
}

func formatLe(bound int64) string { return strconv.FormatInt(bound, 10) }

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SanitizeName maps an arbitrary metric or label name into the exposition
// format's identifier alphabet [a-zA-Z0-9_:], replacing every other rune
// with '_' and prefixing a leading digit.
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// EscapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func EscapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
