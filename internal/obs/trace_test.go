package obs

import "testing"

func TestTracerParenting(t *testing.T) {
	tr := NewTracer(128, nil)
	w := tr.Begin(SpanHostWrite, -1, 7)
	tl := tr.Begin(SpanTranslate, -1, 7)
	gc := tr.Begin(SpanGCMerge, 3, 0)
	cp := tr.Begin(SpanLiveCopy, 3, 0)
	tr.EndPages(cp, 5)
	er := tr.Begin(SpanErase, 3, 0)
	tr.End(er)
	tr.End(gc)
	tr.End(tl)
	tr.End(w)

	snap := tr.Snapshot()
	if len(snap.Spans) != 5 || snap.Total != 5 || snap.Dropped != 0 {
		t.Fatalf("snapshot spans=%d total=%d dropped=%d, want 5/5/0", len(snap.Spans), snap.Total, snap.Dropped)
	}
	byID := map[SpanID]Span{}
	for _, s := range snap.Spans {
		if s.End == 0 {
			t.Errorf("span %d (%s) left open", s.ID, s.Kind)
		}
		byID[s.ID] = s
	}
	checks := []struct {
		id, parent SpanID
		kind       SpanKind
	}{
		{w, 0, SpanHostWrite},
		{tl, w, SpanTranslate},
		{gc, tl, SpanGCMerge},
		{cp, gc, SpanLiveCopy},
		{er, gc, SpanErase},
	}
	for _, c := range checks {
		s, ok := byID[c.id]
		if !ok {
			t.Fatalf("span %d missing from snapshot", c.id)
		}
		if s.Parent != c.parent || s.Kind != c.kind {
			t.Errorf("span %d: parent=%d kind=%s, want parent=%d kind=%s", c.id, s.Parent, s.Kind, c.parent, c.kind)
		}
	}
	if byID[cp].Pages != 5 {
		t.Errorf("live_copy pages = %d, want 5", byID[cp].Pages)
	}
	if byID[w].Arg != 7 {
		t.Errorf("host_write arg = %d, want 7", byID[w].Arg)
	}
}

func TestTracerEndArg(t *testing.T) {
	tr := NewTracer(8, nil)
	sc := tr.Begin(SpanScan, -1, 0)
	tr.EndArg(sc, 42)
	s := tr.Snapshot().Spans[0]
	if s.Arg != 42 || s.End == 0 {
		t.Fatalf("scan span = %+v, want arg 42 and closed", s)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 10; i++ {
		id := tr.Begin(SpanErase, i, 0)
		tr.End(id)
	}
	snap := tr.Snapshot()
	if snap.Total != 10 || snap.Dropped != 6 || len(snap.Spans) != 4 {
		t.Fatalf("total=%d dropped=%d kept=%d, want 10/6/4", snap.Total, snap.Dropped, len(snap.Spans))
	}
	for i, s := range snap.Spans {
		if want := SpanID(7 + i); s.ID != want {
			t.Errorf("kept span %d has ID %d, want %d (oldest-first order)", i, s.ID, want)
		}
		if s.Block != int(s.ID)-1 {
			t.Errorf("span %d block = %d, want %d", s.ID, s.Block, int(s.ID)-1)
		}
	}
	// Durations survive the wrap: the stats counted all 10 erase spans even
	// though the ring only kept the last 4.
	if got := tr.StageLatency()["erase"].Count; got != 10 {
		t.Errorf("erase stage count = %d, want 10 (stats must survive ring wrap)", got)
	}
}

func TestTracerLongLivedSpanSurvivesWrap(t *testing.T) {
	tr := NewTracer(2, nil)
	outer := tr.Begin(SpanSWLEpisode, -1, 0)
	for i := 0; i < 8; i++ {
		id := tr.Begin(SpanErase, i, 0)
		tr.End(id)
	}
	tr.End(outer) // its ring slot was overwritten; the stack frame kept Begin
	sl := tr.StageLatency()
	if sl["swl_episode"].Count != 1 {
		t.Fatalf("swl_episode count = %d, want 1", sl["swl_episode"].Count)
	}
	if sl["swl_episode"].MaxNs <= sl["erase"].MaxNs {
		t.Errorf("episode duration %d should exceed every erase duration %d",
			sl["swl_episode"].MaxNs, sl["erase"].MaxNs)
	}
}

func TestTracerOrphanedChildrenUnwind(t *testing.T) {
	tr := NewTracer(16, nil)
	w := tr.Begin(SpanHostWrite, -1, 1)
	tr.Begin(SpanTranslate, -1, 1) // never ended: error path
	tr.End(w)                      // unwinds through the orphan
	// The next root span must parent to nothing, not to the leaked child.
	r := tr.Begin(SpanHostRead, -1, 2)
	tr.End(r)
	for _, s := range tr.Snapshot().Spans {
		if s.ID == r && s.Parent != 0 {
			t.Fatalf("span after unwind has parent %d, want 0", s.Parent)
		}
	}
}

func TestTracerChipAttribution(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.SetChipOf(func(block int) int {
		if block < 0 {
			return -1
		}
		return block / 4
	})
	e := tr.Begin(SpanErase, 9, 0)
	tr.End(e)
	w := tr.Begin(SpanHostWrite, -1, 0)
	tr.End(w)
	spans := tr.Snapshot().Spans
	if spans[0].Chip != 2 {
		t.Errorf("erase chip = %d, want 2", spans[0].Chip)
	}
	if spans[1].Chip != -1 {
		t.Errorf("blockless span chip = %d, want -1", spans[1].Chip)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	id := tr.Begin(SpanHostWrite, -1, 0)
	if id != 0 {
		t.Fatalf("nil tracer handed out span ID %d, want 0", id)
	}
	tr.End(id)
	tr.EndPages(id, 3)
	tr.EndArg(id, 3)
	tr.SetChipOf(func(int) int { return 0 })
	if tr.Spans() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reports spans")
	}
	if snap := tr.Snapshot(); len(snap.Spans) != 0 {
		t.Fatal("nil tracer snapshot not empty")
	}
	if sl := tr.StageLatency(); sl == nil || len(sl) != 0 {
		t.Fatalf("nil tracer stage latency = %v, want empty non-nil map", sl)
	}
}

func TestStageLatencyQuantiles(t *testing.T) {
	tr := NewTracer(4, nil)
	ticks := int64(0)
	tr.clock = func() int64 { ticks += 50; return ticks } // every span lasts 50
	for i := 0; i < 100; i++ {
		id := tr.Begin(SpanErase, 0, 0)
		tr.End(id)
	}
	sl := tr.StageLatency()["erase"]
	if sl.Count != 100 || sl.SumNs != 5000 || sl.MaxNs != 50 {
		t.Fatalf("stage = %+v, want count 100 sum 5000 max 50", sl)
	}
	// 50 lands in the (32, 64] bucket whose upper bound is min(63, max)=50.
	if sl.P50Ns != 50 || sl.P99Ns != 50 {
		t.Errorf("p50=%d p99=%d, want 50/50 (bucket upper bound clamped to max)", sl.P50Ns, sl.P99Ns)
	}
}

func TestSpanKindStringRoundTrip(t *testing.T) {
	for k := SpanKind(0); int(k) < numSpanKinds; k++ {
		got, ok := SpanKindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %d round-trips to %d (ok=%v)", k, got, ok)
		}
	}
	if _, ok := SpanKindFromString("no_such_kind"); ok {
		t.Error("unknown name resolved to a kind")
	}
}

func TestSnapshotRecentBounds(t *testing.T) {
	tr := NewTracer(100, nil)
	for i := 0; i < 50; i++ {
		tr.End(tr.Begin(SpanErase, i, 0))
	}
	snap := tr.SnapshotRecent(10)
	if len(snap.Spans) != 10 || snap.Total != 50 {
		t.Fatalf("recent snapshot kept %d of total %d, want 10 of 50", len(snap.Spans), snap.Total)
	}
	if snap.Spans[0].ID != 41 || snap.Spans[9].ID != 50 {
		t.Errorf("recent window = [%d, %d], want [41, 50]", snap.Spans[0].ID, snap.Spans[9].ID)
	}
}

// hostTree drives one host_write tree (write → translate → gc_merge →
// erase) through the tracer, exercising both the recorded and skipped
// paths.
func hostTree(t *Tracer, lpn int64) {
	w := t.Begin(SpanHostWrite, -1, lpn)
	tr := t.Begin(SpanTranslate, -1, lpn)
	g := t.Begin(SpanGCMerge, 3, 0)
	e := t.Begin(SpanErase, 3, 0)
	t.End(e)
	t.End(g)
	t.End(tr)
	t.End(w)
}

func TestSampledTracerRecordsOneInN(t *testing.T) {
	tr := NewTracer(256, nil)
	tr.SetSample(4)
	for i := 0; i < 8; i++ {
		hostTree(tr, int64(i))
	}
	snap := tr.Snapshot()
	var writes, erases []int64
	for _, s := range snap.Spans {
		switch s.Kind {
		case SpanHostWrite:
			writes = append(writes, s.Arg)
		case SpanErase:
			erases = append(erases, 1)
		}
	}
	// The countdown starts at 1: tree 0 is recorded, then every 4th.
	if len(writes) != 2 || writes[0] != 0 || writes[1] != 4 {
		t.Fatalf("sampled host writes %v, want lpns [0 4]", writes)
	}
	if len(erases) != 2 {
		t.Fatalf("recorded %d erases, want 2: skipped trees must suppress their children", len(erases))
	}
	if got := tr.StageLatency()["host_write"].Count; got != 2 {
		t.Fatalf("stage stats count %d host writes, want the 2 sampled ones", got)
	}
}

func TestSampledTracerAlwaysRecordsEpisodes(t *testing.T) {
	tr := NewTracer(256, nil)
	tr.SetSample(1000) // thin the host traffic to almost nothing
	episodes := 0
	for i := 0; i < 20; i++ {
		hostTree(tr, int64(i))
		if i%5 == 4 { // an episode between host ops, as the sim drives it
			ep := tr.Begin(SpanSWLEpisode, -1, 0)
			sc := tr.Begin(SpanScan, -1, 0)
			tr.EndArg(sc, 7)
			e := tr.Begin(SpanErase, 9, 0)
			tr.End(e)
			tr.End(ep)
			episodes++
		}
	}
	snap := tr.Snapshot()
	got := 0
	for _, s := range snap.Spans {
		if s.Kind == SpanSWLEpisode {
			got++
			if s.Parent != 0 {
				t.Fatalf("episode span %d has parent %d, want root", s.ID, s.Parent)
			}
		}
	}
	if got != episodes {
		t.Fatalf("recorded %d of %d episodes; sampling must never drop leveler work", got, episodes)
	}
	if tr.StageLatency()["scan"].Count != int64(episodes) {
		t.Fatalf("scan stats %v, want %d", tr.StageLatency()["scan"], episodes)
	}
}

func TestSampledTracerSurvivesUnbalancedEnd(t *testing.T) {
	tr := NewTracer(64, nil)
	tr.SetSample(2)
	hostTree(tr, 0) // recorded (countdown starts at 1)
	w := tr.Begin(SpanHostWrite, -1, 1)
	tr.End(w)
	tr.End(w) // misuse: double End of a skipped tree drives skip negative
	hostTree(tr, 2)
	hostTree(tr, 3)
	recorded := 0
	for _, s := range tr.Snapshot().Spans {
		if s.Kind == SpanHostWrite {
			recorded++
		}
	}
	// The tracer must keep functioning: trees still get recorded and the
	// negative skip heals at the next skipped root rather than suppressing
	// (or recording) everything forever.
	if recorded == 0 || recorded == 4 {
		t.Fatalf("recorded %d of 4 host trees after unbalanced End, want sampling to keep working", recorded)
	}
}
