package chrometrace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"flashswl/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// fixedTree is a deterministic span tree covering every kind, both causal
// chains of the design (host write → erase, episode → erase), a still-open
// span, and negative/chip attributes.
func fixedTree() *obs.TraceSnapshot {
	return &obs.TraceSnapshot{
		Total: 10, Dropped: 0,
		Spans: []obs.Span{
			{ID: 1, Kind: obs.SpanHostWrite, Begin: 1000, End: 9000, Block: -1, Chip: -1, Arg: 42},
			{ID: 2, Parent: 1, Kind: obs.SpanTranslate, Begin: 1500, End: 8500, Block: -1, Chip: -1, Arg: 42},
			{ID: 3, Parent: 2, Kind: obs.SpanGCMerge, Begin: 2000, End: 8000, Block: 7, Chip: 1},
			{ID: 4, Parent: 3, Kind: obs.SpanLiveCopy, Begin: 2500, End: 6000, Block: 7, Chip: 1, Pages: 12},
			{ID: 5, Parent: 3, Kind: obs.SpanErase, Begin: 6500, End: 7999, Block: 7, Chip: 1},
			{ID: 6, Kind: obs.SpanSWLEpisode, Begin: 10000, End: 20001, Block: -1, Chip: -1},
			{ID: 7, Parent: 6, Kind: obs.SpanScan, Begin: 10100, End: 10200, Block: -1, Chip: -1, Arg: 3},
			{ID: 8, Parent: 6, Kind: obs.SpanSetSelect, Begin: 10300, End: 19000, Block: -1, Chip: -1, Arg: 5},
			{ID: 9, Parent: 8, Kind: obs.SpanErase, Begin: 11000, End: 12345, Block: 20, Chip: 2},
			{ID: 10, Kind: obs.SpanHostRead, Begin: 21000, End: 0, Block: -1, Chip: -1, Arg: 9}, // open: skipped
		},
	}
}

func TestWriteGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, fixedTree()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fixed_tree.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestRoundTrip(t *testing.T) {
	in := fixedTree()
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != len(in.Spans)-1 { // the open span is dropped
		t.Fatalf("round trip kept %d spans, want %d", len(out.Spans), len(in.Spans)-1)
	}
	for i, got := range out.Spans {
		if got != in.Spans[i] {
			t.Errorf("span %d round-tripped to %+v, want %+v", i, got, in.Spans[i])
		}
	}
}

func TestReadSkipsForeignEvents(t *testing.T) {
	src := `{"traceEvents":[
		{"name":"host_write","ph":"X","ts":1.000,"dur":2.000,"pid":1,"tid":1,"args":{"id":1}},
		{"name":"process_name","ph":"M","args":{"name":"other tool"}},
		{"name":"unknown_kind","ph":"X","ts":0,"dur":0}
	]}`
	snap, err := Read(bytes.NewReader([]byte(src)))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Kind != obs.SpanHostWrite {
		t.Fatalf("read %d spans (%v), want just the host_write", len(snap.Spans), snap.Spans)
	}
	if snap.Spans[0].Begin != 1000 || snap.Spans[0].End != 3000 {
		t.Errorf("span times = [%d, %d], want [1000, 3000]", snap.Spans[0].Begin, snap.Spans[0].End)
	}
}

func TestParseUsec(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0}, {"1", 1000}, {"1.5", 1500}, {"0.001", 1},
		{"123.456", 123456}, {"-2.5", -2500}, {"7.1234", 7123},
	}
	for _, c := range cases {
		got, err := parseUsec(json.Number(c.in))
		if err != nil || got != c.want {
			t.Errorf("parseUsec(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	if _, err := parseUsec(json.Number("1.2.3")); err == nil {
		t.Error("malformed number accepted")
	}
}

// FuzzWriteValidTraceEvents drives Write with arbitrary ring contents and
// checks the invariant the viewers rely on: the output is one JSON object
// whose traceEvents array members each carry a string name, phase "X", and
// non-negative numeric ts/dur — and Read accepts its own output.
func FuzzWriteValidTraceEvents(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 0, 64)
	for _, s := range fixedTree().Spans {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(s.Begin))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		snap := &obs.TraceSnapshot{}
		for len(data) >= 8 {
			word := binary.LittleEndian.Uint64(data[:8])
			data = data[8:]
			snap.Spans = append(snap.Spans, obs.Span{
				ID:     obs.SpanID(word),
				Parent: obs.SpanID(word >> 7),
				Kind:   obs.SpanKind(word % 11), // includes out-of-range kinds
				Begin:  int64(word>>3) % 1e15,
				End:    int64(word>>5) % 1e15,
				Block:  int(int8(word >> 13)),
				Chip:   int(int8(word >> 21)),
				Pages:  int(uint16(word >> 29)),
				Arg:    int64(word >> 37),
			})
		}
		snap.Total = int64(len(snap.Spans))
		var buf bytes.Buffer
		if err := Write(&buf, snap); err != nil {
			t.Fatalf("Write: %v", err)
		}
		var parsed struct {
			TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
		}
		dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
		dec.UseNumber()
		if err := dec.Decode(&parsed); err != nil {
			t.Fatalf("output is not valid JSON: %v\n%s", err, buf.Bytes())
		}
		for i, ev := range parsed.TraceEvents {
			var name, ph string
			if err := json.Unmarshal(ev["name"], &name); err != nil || name == "" {
				t.Fatalf("event %d: bad name %s", i, ev["name"])
			}
			if err := json.Unmarshal(ev["ph"], &ph); err != nil || ph != "X" {
				t.Fatalf("event %d: phase %s, want \"X\"", i, ev["ph"])
			}
			for _, key := range []string{"ts", "dur"} {
				var num json.Number
				if err := json.Unmarshal(ev[key], &num); err != nil {
					t.Fatalf("event %d: %s not a number: %s", i, key, ev[key])
				}
				if v, err := num.Float64(); err != nil || v < 0 {
					t.Fatalf("event %d: %s = %s, want non-negative", i, key, num)
				}
			}
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("Read rejects Write output: %v", err)
		}
	})
}
