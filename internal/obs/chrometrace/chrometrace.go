// Package chrometrace exports span snapshots in the Chrome trace-event JSON
// format, the interchange format chrome://tracing, Perfetto
// (ui.perfetto.dev), and speedscope all load. Each completed span becomes
// one complete ("ph":"X") event whose args carry the causal structure — span
// ID, parent ID, block, chip, pages — so a flamegraph of the simulated stack
// is one file drop away, and swltrace can read the file back for offline
// aggregation.
package chrometrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"flashswl/internal/obs"
)

// Args is the per-event metadata block: the span's identity and
// attribution, preserved exactly enough for Read to reconstruct the span
// (timestamps round-trip through microseconds with three decimals, i.e.
// nanosecond resolution).
type Args struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Block  int    `json:"block"`
	Chip   int    `json:"chip"`
	Pages  int    `json:"pages"`
	Arg    int64  `json:"arg"`
}

// event is one trace-event record. Only the fields the viewers need.
type event struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   json.Number `json:"ts"`
	Dur  json.Number `json:"dur"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args Args        `json:"args"`
}

// file is the JSON Object Format variant of the trace-event file (the
// array-only variant is also legal input to the viewers, but the object
// form leaves room for metadata). OtherData carries the ring accounting the
// events alone can't: how many spans were ever recorded and how many the
// ring overwrote. The viewers ignore the extra key.
type file struct {
	TraceEvents []event    `json:"traceEvents"`
	OtherData   *otherData `json:"otherData,omitempty"`
}

type otherData struct {
	Total   int64 `json:"spans_total"`
	Dropped int64 `json:"spans_dropped"`
}

// usec renders a clock reading (nanoseconds) as the microsecond value the
// trace-event format requires, with three decimals so no precision is lost.
func usec(ns int64) json.Number {
	sign := ""
	if ns < 0 {
		sign, ns = "-", -ns
	}
	return json.Number(fmt.Sprintf("%s%d.%03d", sign, ns/1000, ns%1000))
}

// Write exports every completed span of the snapshot as trace-event JSON.
// Open spans (End == 0) are skipped: the viewers need a duration, and a
// snapshot taken mid-run legitimately contains in-flight spans. All events
// land on pid 1, with the tid carrying the span's chip + 1 so multi-chip
// runs render one lane per chip (chipless spans land on tid 0's lane).
func Write(w io.Writer, snap *obs.TraceSnapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	for _, s := range snap.Spans {
		if s.End == 0 {
			continue
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		dur := s.End - s.Begin
		if dur < 0 {
			dur = 0
		}
		ev := event{
			Name: s.Kind.String(), Ph: "X",
			Ts: usec(s.Begin), Dur: usec(dur),
			Pid: 1, Tid: s.Chip + 1,
			Args: Args{
				ID: uint64(s.ID), Parent: uint64(s.Parent),
				Block: s.Block, Chip: s.Chip, Pages: s.Pages, Arg: s.Arg,
			},
		}
		// Encode appends a newline after each event, which the format
		// tolerates and which keeps the file diffable line-per-event.
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	meta, err := json.Marshal(otherData{Total: snap.Total, Dropped: snap.Dropped})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "],\n\"otherData\":%s}\n", meta); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a trace-event file written by Write (or any file in the JSON
// Object Format whose events carry this package's args) back into spans,
// in file order. Events whose name is not a known span kind, or whose phase
// is not "X", are skipped rather than rejected, so traces annotated by
// other tools still load.
func Read(r io.Reader) (*obs.TraceSnapshot, error) {
	var f file
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("chrometrace: %w", err)
	}
	snap := &obs.TraceSnapshot{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		kind, ok := obs.SpanKindFromString(ev.Name)
		if !ok {
			continue
		}
		begin, err := parseUsec(ev.Ts)
		if err != nil {
			return nil, fmt.Errorf("chrometrace: event %d ts: %w", ev.Args.ID, err)
		}
		dur, err := parseUsec(ev.Dur)
		if err != nil {
			return nil, fmt.Errorf("chrometrace: event %d dur: %w", ev.Args.ID, err)
		}
		snap.Spans = append(snap.Spans, obs.Span{
			ID: obs.SpanID(ev.Args.ID), Parent: obs.SpanID(ev.Args.Parent), Kind: kind,
			Begin: begin, End: begin + dur,
			Block: ev.Args.Block, Chip: ev.Args.Chip, Pages: ev.Args.Pages, Arg: ev.Args.Arg,
		})
	}
	snap.Total = int64(len(snap.Spans))
	if f.OtherData != nil {
		snap.Total, snap.Dropped = f.OtherData.Total, f.OtherData.Dropped
	}
	return snap, nil
}

// parseUsec converts a microsecond JSON number back to nanoseconds,
// accepting both this package's fixed-point form and plain integers or
// floats other producers write.
func parseUsec(n json.Number) (int64, error) {
	s := n.String()
	if s == "" {
		return 0, nil
	}
	neg := false
	if s[0] == '-' {
		neg, s = true, s[1:]
	}
	var whole, frac int64
	var fracDigits int
	inFrac := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '.':
			if inFrac {
				return 0, fmt.Errorf("malformed number %q", n)
			}
			inFrac = true
		case c < '0' || c > '9':
			return 0, fmt.Errorf("malformed number %q", n)
		case inFrac:
			if fracDigits < 3 { // beyond nanoseconds: truncate
				frac = frac*10 + int64(c-'0')
				fracDigits++
			}
		default:
			whole = whole*10 + int64(c-'0')
		}
	}
	for fracDigits < 3 {
		frac *= 10
		fracDigits++
	}
	ns := whole*1000 + frac
	if neg {
		ns = -ns
	}
	return ns, nil
}
