package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestBenchSummaryRoundtrip(t *testing.T) {
	b := NewBenchSummary("default")
	b.Add(
		RunSummary{Name: "aged/NFTL/k3_T1000", Layer: "NFTL", SWL: true, K: 3, T: 1000, FirstWearHours: -1},
		RunSummary{Name: "aged/FTL/base", Layer: "FTL", FirstWearHours: 12.5, Erases: 999},
	)
	b.Sort()
	if b.Runs[0].Name != "aged/FTL/base" {
		t.Errorf("sort order: %q first", b.Runs[0].Name)
	}

	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeBenchSummary(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Schema != BenchSummarySchema || got.Scale != "default" || len(got.Runs) != 2 {
		t.Errorf("decoded = %+v", got)
	}
	r := got.Run("aged/FTL/base")
	if r == nil || r.Erases != 999 || r.FirstWearHours != 12.5 {
		t.Errorf("Run lookup = %+v", r)
	}
	if got.Run("absent") != nil {
		t.Error("Run on unknown name must return nil")
	}
}

func TestDecodeBenchSummaryRejectsForeignSchema(t *testing.T) {
	in := `{"schema":"something/else/v9","runs":[]}`
	if _, err := DecodeBenchSummary(strings.NewReader(in)); err == nil {
		t.Error("foreign schema decoded without error")
	}
	if _, err := DecodeBenchSummary(strings.NewReader("not json")); err == nil {
		t.Error("garbage decoded without error")
	}
}

func TestSummaryFromJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Observe(Event{Kind: EvBlockErased, Block: 3, Page: -1, Findex: -1})
	w.Sample(WearSample{Events: 500, SimTime: time.Hour, MeanErase: 1, Erases: 10})
	w.Sample(WearSample{Events: 1000, SimTime: 2 * time.Hour, MeanErase: 2, StdDevErase: 0.5,
		MinErase: 1, MaxErase: 4, Erases: 64, WornBlocks: 1})
	r := NewRegistry()
	r.Counter(MetricErases).Add(64)
	r.Counter(MetricCopiedPages).Add(300)
	w.Metrics(r)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	b, err := SummaryFromJSONL(bytes.NewReader(buf.Bytes()), "myrun")
	if err != nil {
		t.Fatalf("SummaryFromJSONL: %v", err)
	}
	if len(b.Runs) != 1 {
		t.Fatalf("runs = %d", len(b.Runs))
	}
	run := b.Runs[0]
	if run.Name != "myrun" || run.Events != 1000 || run.SimHours != 2 {
		t.Errorf("run = %+v", run)
	}
	// First failure approximated by the earliest sample with a worn block.
	if run.FirstWearHours != 2 {
		t.Errorf("first wear hours = %g, want 2", run.FirstWearHours)
	}
	if run.LiveCopies != 300 || run.Erases != 64 {
		t.Errorf("counters: copies %d erases %d", run.LiveCopies, run.Erases)
	}

	// No worn block anywhere: first failure stays at the -1 sentinel.
	var buf2 bytes.Buffer
	w2 := NewJSONLWriter(&buf2)
	w2.Sample(WearSample{Events: 100, SimTime: time.Hour})
	if err := w2.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	b2, err := SummaryFromJSONL(bytes.NewReader(buf2.Bytes()), "short")
	if err != nil {
		t.Fatal(err)
	}
	if b2.Runs[0].FirstWearHours != -1 {
		t.Errorf("first wear hours = %g, want -1", b2.Runs[0].FirstWearHours)
	}

	if _, err := SummaryFromJSONL(strings.NewReader(""), "x"); err == nil {
		t.Error("empty stream summarized without error")
	}
	if _, err := SummaryFromJSONL(strings.NewReader("{broken\n"), "x"); err == nil {
		t.Error("malformed line summarized without error")
	}
}
