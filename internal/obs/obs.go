// Package obs is the observability layer of the simulator: typed event
// tracing, cheap metrics (counters, gauges, and fixed-bucket histograms),
// periodic wear time-series samples, and an invariant checker that
// cross-checks live system state at the wear leveler's decision points.
//
// The paper's headline claims are distributional — first-failure time,
// erase-count deviation, overhead ratios — but end-of-run aggregates cannot
// show *how* wear evens out over time. This package supplies the hooks that
// per-event streams and periodic wear snapshots need: the nand chip, the
// translation-layer cleaners, and the SW Leveler all emit into an EventSink,
// and the simulation harness samples WearSamples into a trajectory.
//
// The package is dependency-free so every layer of the stack can emit into
// it without import cycles; hosts wire concrete state (the chip, the
// translation layer, the BET) into the InvariantChecker as closures.
//
// Everything is nil-tolerant and allocation-free when disabled: emission
// sites guard with a nil check and build Event values on the stack, a nil
// *Registry hands out nil instruments, and every instrument method is a
// no-op on a nil receiver. Like the simulated chip itself, obs values are
// confined to a single simulation goroutine — they are not safe for
// concurrent use (parallel experiment cells each build their own).
package obs

import "fmt"

// EventKind identifies the typed events the stack emits.
type EventKind uint8

const (
	// EvBlockErased reports one successful block erase (Block, Forced).
	EvBlockErased EventKind = iota
	// EvPagesCopied reports one garbage-collection copy batch: the live
	// pages relocated out of a block before its erase (Block, Pages,
	// Forced).
	EvPagesCopied
	// EvLevelerTriggered reports one SWL-Procedure decision point, emitted
	// immediately before the leveler asks the Cleaner to recycle a block
	// set (Findex, Scan, Ecnt, Fcnt). The InvariantChecker runs its checks
	// on this event.
	EvLevelerTriggered
	// EvBETReset reports the end of a resetting interval: every flag was
	// set and the BET restarted (Fcnt carries the post-reset flag count,
	// nonzero when excluded sets are pre-flagged).
	EvBETReset
	// EvBlockRetired reports a block withdrawn from service — worn out or
	// unerasable (Block, Forced).
	EvBlockRetired
	// EvFaultInjected reports an injected fault rejecting a chip primitive
	// (Block, Page, Op).
	EvFaultInjected
	// EvEpisodeBegin opens a leveler episode span: one SWL-Procedure
	// invocation that is about to act (Ecnt, Fcnt at entry). Everything the
	// stack emits until the matching EvEpisodeEnd is attributable leveling
	// cost; see EpisodeBuilder.
	EvEpisodeBegin
	// EvEpisodeEnd closes a leveler episode span (Ecnt, Fcnt at exit, plus
	// Sets/Skipped block-set counts for the invocation).
	EvEpisodeEnd
	// EvCacheWriteback reports one dirty line of the flash-aware write-back
	// cache (internal/serve/cache) written back to the device below — on
	// eviction or flush. Page carries the logical page the line caches,
	// Pages the sectors written, and Forced is true for whole-line
	// writebacks (the flash-friendly path that skips the read-modify-write).
	// Cache hits and fills are deliberately not events: they are far too hot
	// for the stream and are exposed as counters and spans instead.
	EvCacheWriteback
)

// String names the kind in snake_case, the form the JSONL schema uses.
func (k EventKind) String() string {
	switch k {
	case EvBlockErased:
		return "block_erased"
	case EvPagesCopied:
		return "pages_copied"
	case EvLevelerTriggered:
		return "leveler_triggered"
	case EvBETReset:
		return "bet_reset"
	case EvBlockRetired:
		return "block_retired"
	case EvFaultInjected:
		return "fault_injected"
	case EvEpisodeBegin:
		return "episode_begin"
	case EvEpisodeEnd:
		return "episode_end"
	case EvCacheWriteback:
		return "cache_writeback"
	default:
		return fmt.Sprintf("event_kind_%d", uint8(k))
	}
}

// Event is one typed observation. It is a plain value — emitting one
// allocates nothing. Fields not meaningful for a kind hold their zero value
// (block/page fields use -1 for "not applicable").
type Event struct {
	Kind EventKind
	// Block is the physical block concerned (BlockErased, PagesCopied,
	// BlockRetired, FaultInjected); -1 otherwise.
	Block int
	// Page is the page within the block (FaultInjected); -1 otherwise.
	Page int
	// Pages is the size of a copy batch (PagesCopied).
	Pages int
	// Forced marks work performed on behalf of the SW Leveler rather than
	// the free-space watermark.
	Forced bool
	// Findex is the block-set flag index the leveler selected
	// (LevelerTriggered); -1 otherwise.
	Findex int
	// Scan is how many set flags the cyclic scan stepped over to reach
	// Findex (LevelerTriggered).
	Scan int
	// Ecnt and Fcnt snapshot the leveler's unevenness state at the
	// decision point (LevelerTriggered, EpisodeBegin, EpisodeEnd; Fcnt also
	// on BETReset).
	Ecnt int64
	Fcnt int
	// Sets and Skipped count the block sets recycled and skipped by one
	// SWL-Procedure invocation (EpisodeEnd).
	Sets    int
	Skipped int
	// Op names the chip primitive a fault rejected (FaultInjected).
	Op string
	// Chip is the member-chip index of Block inside a multi-chip array, so
	// per-chip wear series stay separable when events funnel through one
	// sink. Single-chip stacks leave it 0; array stacks set -1 on events
	// that carry no block.
	Chip int
}

// EventSink receives events. Implementations must not retain references
// into the emitting layer; the Event value itself is safe to keep.
type EventSink interface {
	Observe(Event)
}

// SinkFunc adapts a function to the EventSink interface.
type SinkFunc func(Event)

// Observe calls f(e).
//
//lint:hotpath event emission; see obs/alloc_test.go
func (f SinkFunc) Observe(e Event) { f(e) }

// MultiSink fans every event out to several sinks, in order.
type MultiSink []EventSink

// Observe forwards the event to each sink.
//
//lint:hotpath event emission; see obs/alloc_test.go
func (m MultiSink) Observe(e Event) {
	for _, s := range m {
		s.Observe(e)
	}
}

// Combine returns a sink fanning out to the non-nil sinks: nil when none
// remain, the sink itself when one does, and a MultiSink otherwise.
func Combine(sinks ...EventSink) EventSink {
	var live []EventSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return MultiSink(live)
	}
}

// Counter is a monotonically increasing metric. Methods are no-ops on a nil
// receiver, so disabled instrumentation costs one branch.
type Counter struct{ v int64 }

// Inc adds one.
//
//lint:hotpath metric emission; see obs/alloc_test.go
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
//
//lint:hotpath metric emission; see obs/alloc_test.go
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time metric. Methods are no-ops on a nil receiver.
type Gauge struct{ v int64 }

// Set records the current value.
//
//lint:hotpath metric emission; see obs/alloc_test.go
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last value set (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts values into fixed buckets: Counts[i] counts values
// v <= Bounds[i] (first matching bound), with one implicit overflow bucket
// past the last bound. Methods are no-ops on a nil receiver.
type Histogram struct {
	bounds []int64
	counts []int64
	count  int64
	sum    int64
}

// Observe folds a value into the histogram.
//
//lint:hotpath metric emission; see obs/alloc_test.go
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns how many values were observed (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
}

// HistogramSnapshot is a histogram's exported state: len(Counts) ==
// len(Bounds)+1, the final bucket counting values past the last bound.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Registry names and owns a run's instruments. A nil *Registry hands out
// nil instruments, whose methods are no-ops — callers resolve instruments
// once and instrument hot paths unconditionally. Not safe for concurrent
// use.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (nil on a nil registry). Bounds must be sorted
// ascending; later calls reuse the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{bounds: append([]int64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Snapshot exports every instrument's current value, with names sorted so
// dumps are deterministic.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry state (zero value on a nil registry).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Canonical metric names fed by NewMetricsSink.
const (
	MetricErases       = "erases_total"
	MetricForcedErases = "forced_erases_total"
	MetricCopiedPages  = "copied_pages_total"
	MetricRetired      = "retired_blocks_total"
	MetricFaults       = "faults_injected_total"
	MetricTriggers     = "leveler_triggers_total"
	MetricBETResets    = "bet_resets_total"
	MetricCopyBatches  = "gc_copy_batch_pages"
	MetricScanLengths  = "leveler_scan_length"
	MetricEpisodes     = "leveler_episodes_total"
	MetricEpisodeSets  = "leveler_episode_sets"
)

// Chip-level operation totals, fed by hosts from nand.Config.ObserveHook
// rather than by NewMetricsSink (chip primitives are far too hot to route
// through the event stream).
const (
	MetricChipReads    = "chip_reads_total"
	MetricChipPrograms = "chip_programs_total"
	MetricChipErases   = "chip_erases_total"
)

// Served-traffic totals, fed by the internal/serve actor and the
// internal/serve/cache front-end from their own counters (per-request work
// is too hot for the event stream; only writebacks appear there).
const (
	MetricServeRequests   = "serve_requests_total"
	MetricServeBatches    = "serve_batches_total"
	MetricServeCoalesced  = "serve_coalesced_writes_total"
	MetricCacheHits       = "cache_hits_total"
	MetricCacheMisses     = "cache_misses_total"
	MetricCacheFills      = "cache_fills_total"
	MetricCacheWritebacks = "cache_writebacks_total"
)

// NewMetricsSink returns an EventSink folding the event stream into the
// registry under the canonical metric names: totals for erases (split
// forced/unforced), copied pages, retirements, faults, leveler triggers and
// BET resets, plus histograms of GC copy batch sizes and leveler scan
// lengths.
func NewMetricsSink(r *Registry) EventSink {
	erases := r.Counter(MetricErases)
	forced := r.Counter(MetricForcedErases)
	copied := r.Counter(MetricCopiedPages)
	retired := r.Counter(MetricRetired)
	faults := r.Counter(MetricFaults)
	triggers := r.Counter(MetricTriggers)
	resets := r.Counter(MetricBETResets)
	episodes := r.Counter(MetricEpisodes)
	batches := r.Histogram(MetricCopyBatches, 1, 2, 4, 8, 16, 32, 64, 128)
	scans := r.Histogram(MetricScanLengths, 0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
	sets := r.Histogram(MetricEpisodeSets, 1, 2, 4, 8, 16, 32, 64)
	return SinkFunc(func(e Event) {
		switch e.Kind {
		case EvBlockErased:
			erases.Inc()
			if e.Forced {
				forced.Inc()
			}
		case EvPagesCopied:
			copied.Add(int64(e.Pages))
			batches.Observe(int64(e.Pages))
		case EvLevelerTriggered:
			triggers.Inc()
			scans.Observe(int64(e.Scan))
		case EvBETReset:
			resets.Inc()
		case EvBlockRetired:
			retired.Inc()
		case EvFaultInjected:
			faults.Inc()
		case EvEpisodeEnd:
			episodes.Inc()
			sets.Observe(int64(e.Sets))
		}
	})
}
