package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// BENCH summary artifact: a machine-readable end-of-run record every front
// end emits (swlsim, experiments) and cmd/swlstat diffs across runs. The
// schema is versioned so old artifacts stay decodable as fields accrue.

// BenchSummarySchema identifies the artifact format. v2 added the optional
// per-run stage_latency section (causal-span stage timings); v1 artifacts
// differ only by its absence, so the decoder accepts both.
const BenchSummarySchema = "flashswl/bench-summary/v2"

// benchSummarySchemaV1 is the previous format, still accepted on decode so
// checked-in baselines stay diffable.
const benchSummarySchemaV1 = "flashswl/bench-summary/v1"

// RunSummary is one run's headline numbers: the configuration, the paper's
// endurance metrics (first failure, erase distribution), and the overhead
// counters behind Figures 6–7. FirstWearHours is -1 when no block wore out.
type RunSummary struct {
	// Name keys the run for diffing (e.g. "fig5/FTL/k0_T100").
	Name  string `json:"name"`
	Layer string `json:"layer"`
	SWL   bool   `json:"swl"`
	// Leveler names the wear-leveling strategy ("swl", "periodic",
	// "dualpool", ...); empty in pre-arena artifacts and baseline runs.
	Leveler string  `json:"leveler,omitempty"`
	K       int     `json:"k"`
	T       float64 `json:"t"`
	Seed    int64   `json:"seed"`

	Events     int64   `json:"events"`
	PageWrites int64   `json:"page_writes"`
	PageReads  int64   `json:"page_reads"`
	SimHours   float64 `json:"sim_hours"`

	FirstWearHours float64 `json:"first_wear_hours"`
	WornBlocks     int     `json:"worn_blocks"`

	Erases       int64 `json:"erases"`
	ForcedErases int64 `json:"forced_erases"`
	LiveCopies   int64 `json:"live_copies"`
	ForcedCopies int64 `json:"forced_copies"`
	GCRuns       int64 `json:"gc_runs"`

	MeanErase   float64 `json:"mean_erase"`
	StdDevErase float64 `json:"stddev_erase"`
	MinErase    int     `json:"min_erase"`
	MaxErase    int     `json:"max_erase"`

	RetiredBlocks int64 `json:"retired_blocks"`
	Episodes      int64 `json:"episodes"`

	// WallSeconds is the host-measured wall time, when the front end can
	// attribute one to the run. It never participates in regression diffs.
	WallSeconds float64 `json:"wall_seconds,omitempty"`

	// StageLatency is the causal tracer's per-stage duration summary (keyed
	// by span kind name — host_write, translate, gc_merge, ...), present
	// since schema v2 when the run traced spans. Counts are exact for
	// recorded spans; durations are logical ticks unless the run used a
	// wall trace clock.
	StageLatency map[string]StageLatency `json:"stage_latency,omitempty"`
}

// BenchSummary is the BENCH_summary.json artifact: a set of named runs from
// one invocation of a front end.
type BenchSummary struct {
	Schema string       `json:"schema"`
	Scale  string       `json:"scale,omitempty"`
	Runs   []RunSummary `json:"runs"`
}

// NewBenchSummary returns an empty artifact for the given scale label.
func NewBenchSummary(scale string) *BenchSummary {
	return &BenchSummary{Schema: BenchSummarySchema, Scale: scale}
}

// Add appends runs to the artifact.
func (b *BenchSummary) Add(runs ...RunSummary) { b.Runs = append(b.Runs, runs...) }

// Run returns the named run, or nil.
func (b *BenchSummary) Run(name string) *RunSummary {
	for i := range b.Runs {
		if b.Runs[i].Name == name {
			return &b.Runs[i]
		}
	}
	return nil
}

// Sort orders runs by name so artifacts are byte-stable across parallel
// sweeps.
func (b *BenchSummary) Sort() {
	sort.Slice(b.Runs, func(i, j int) bool { return b.Runs[i].Name < b.Runs[j].Name })
}

// Encode writes the artifact as indented JSON.
func (b *BenchSummary) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// DecodeBenchSummary reads one artifact, rejecting unknown schemas.
func DecodeBenchSummary(r io.Reader) (*BenchSummary, error) {
	var b BenchSummary
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("obs: decoding bench summary: %w", err)
	}
	if b.Schema != BenchSummarySchema && b.Schema != benchSummarySchemaV1 {
		return nil, fmt.Errorf("obs: bench summary schema %q, want %q (or %q)", b.Schema, BenchSummarySchema, benchSummarySchemaV1)
	}
	return &b, nil
}

// SummaryFromJSONL reconstructs a single-run artifact from a JSONL
// observability stream (swlsim -metrics output): the final wear sample
// supplies the distribution and progress numbers, the earliest sample with a
// worn block approximates the first failure time (to one sampling interval),
// and the final metrics snapshot supplies the overhead counters. Streams
// without samples or metrics yield whatever subset was present.
func SummaryFromJSONL(r io.Reader, name string) (*BenchSummary, error) {
	b := NewBenchSummary("jsonl")
	run := RunSummary{Name: name, FirstWearHours: -1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var probe struct {
		Type string `json:"type"`
	}
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", n, err)
		}
		switch probe.Type {
		case "sample":
			var rec SampleRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("obs: jsonl line %d: %w", n, err)
			}
			s := rec.WearSample
			run.Events = s.Events
			run.SimHours = s.SimTime.Hours()
			run.MeanErase, run.StdDevErase = s.MeanErase, s.StdDevErase
			run.MinErase, run.MaxErase = s.MinErase, s.MaxErase
			run.Erases = s.Erases
			run.WornBlocks = s.WornBlocks
			if s.WornBlocks > 0 && run.FirstWearHours < 0 {
				run.FirstWearHours = s.SimTime.Hours()
			}
		case "metrics":
			var rec MetricsRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("obs: jsonl line %d: %w", n, err)
			}
			c := rec.Counters
			run.Erases = c[MetricErases]
			run.ForcedErases = c[MetricForcedErases]
			run.LiveCopies = c[MetricCopiedPages]
			run.RetiredBlocks = c[MetricRetired]
			run.Episodes = c[MetricEpisodes]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading jsonl: %w", err)
	}
	if n == 0 {
		return nil, fmt.Errorf("obs: empty jsonl stream")
	}
	b.Add(run)
	return b, nil
}
