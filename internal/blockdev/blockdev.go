// Package blockdev adapts a page-granularity Flash Translation Layer driver
// (ftl, nftl, or dftl) into the 512-byte-sector block device that file
// systems expect — the block-device emulation role the paper's Figure 1
// assigns to the Flash Translation Layer.
//
// # Read-modify-write sub-sector semantics
//
// The device's atom is the 512-byte sector, but the flash below reads and
// programs whole pages (typically 2-8 KB, SectorSize × spp). A read or
// write whose range is page-aligned at both ends goes straight through as
// whole-page operations. Any partial page — a range starting or ending
// mid-page — is handled with read-modify-write of the containing page: the
// page is read into a scratch buffer, the touched sectors are overlaid, and
// the whole page is written back. Consequences callers must know:
//
//   - A one-sector write still costs one page read plus one page write at
//     the flash; sub-page write amplification is spp:1 in the worst case.
//     The internal/serve/cache front-end exists to absorb exactly this —
//     its lines are whole pages, and a fully dirty line writes back without
//     the read.
//   - The untouched sectors of the page are rewritten with whatever the
//     read returned. Never-written pages read as 0xFF (flash convention),
//     so a partial write to a virgin page persists 0xFF filler around it.
//   - The read-modify-write is not atomic at the flash level: a power cut
//     between the read and the program can lose the whole page's previous
//     contents on layers that update in place (none of the three drivers
//     do — they are out-of-place — so here the old page version survives
//     until the new program completes).
//
// Failed operations return a typed *SectorError wrapping ErrOutOfRange or
// ErrUnaligned, so callers (the serve HTTP layer maps them to 416) can
// tell addressing mistakes from media errors, which pass through unwrapped.
//
// A Device wraps a driver and inherits its single-goroutine confinement
// and determinism; internal/serve owns one inside a per-device actor
// goroutine to serve concurrent clients.
package blockdev

import (
	"errors"
	"fmt"
)

// SectorSize is the fixed logical sector size, in bytes.
const SectorSize = 512

// PageStore is the page-level interface the adapter drives; both ftl.Driver
// and nftl.Driver satisfy it. The backing chip must retain data
// (nand.Config.StoreData) for the device to be useful.
type PageStore interface {
	ReadPage(lpn int, buf []byte) (bool, error)
	WritePage(lpn int, data []byte) error
	LogicalPages() int
}

// ErrOutOfRange reports an access beyond the device.
var ErrOutOfRange = errors.New("blockdev: sector out of range")

// ErrUnaligned reports a buffer whose length is not a whole number of
// sectors (or, for the single-sector calls, not exactly one sector).
var ErrUnaligned = errors.New("blockdev: buffer not sector aligned")

// SectorError is the typed addressing error every Device entry point (and
// the serve cache front-end, which shares the sector address space) returns
// for an invalid request: an out-of-range [LBA, LBA+Count) window or an
// unaligned buffer. Media errors from the layer below pass through as-is;
// a SectorError always means the request itself was malformed, so retrying
// it unchanged can never succeed. It wraps ErrOutOfRange or ErrUnaligned
// for errors.Is dispatch.
type SectorError struct {
	// Op names the entry point: "read", "write", or "discard".
	Op string
	// LBA and Count give the requested sector window [LBA, LBA+Count).
	// For unaligned-buffer errors Count carries the offending byte length
	// instead, and Sectors is 0.
	LBA   int64
	Count int
	// Sectors is the device capacity the range check ran against.
	Sectors int64
	// Err is the sentinel category: ErrOutOfRange or ErrUnaligned.
	Err error
}

// Error formats the addressing failure with the full requested window.
func (e *SectorError) Error() string {
	if errors.Is(e.Err, ErrUnaligned) {
		return fmt.Sprintf("blockdev: %s: buffer length %d is not sector aligned", e.Op, e.Count)
	}
	return fmt.Sprintf("blockdev: %s [%d,%d) of %d: %v", e.Op, e.LBA, e.LBA+int64(e.Count), e.Sectors, e.Err)
}

// Unwrap exposes the sentinel so errors.Is(err, ErrOutOfRange) keeps
// working across the typed upgrade.
func (e *SectorError) Unwrap() error { return e.Err }

// RangeError builds the out-of-range SectorError for op over
// [lba, lba+n) on a device of sectors sectors. Shared with
// internal/serve/cache so cached and uncached paths fail identically.
func RangeError(op string, lba int64, n int, sectors int64) *SectorError {
	return &SectorError{Op: op, LBA: lba, Count: n, Sectors: sectors, Err: ErrOutOfRange}
}

// AlignError builds the unaligned-buffer SectorError for op with a buffer
// of length bytes.
func AlignError(op string, length int) *SectorError {
	return &SectorError{Op: op, Count: length, Err: ErrUnaligned}
}

// CheckRange validates a [lba, lba+n) sector window against a device of
// sectors sectors, returning a typed *SectorError (never a bare error) on
// violation. Exported for front-ends that answer from their own state
// without consulting the Device (the serve cache).
func CheckRange(op string, lba int64, n int, sectors int64) error {
	if lba < 0 || n < 0 || lba+int64(n) > sectors {
		return RangeError(op, lba, n, sectors)
	}
	return nil
}

// Device is a sector-addressed block device over a PageStore. Not safe for
// concurrent use.
type Device struct {
	store    PageStore
	pageSize int
	spp      int // sectors per page
	sectors  int64
	pageBuf  []byte
}

// New wraps a page store whose pages are pageSize bytes (a multiple of the
// sector size).
func New(store PageStore, pageSize int) (*Device, error) {
	if pageSize < SectorSize || pageSize%SectorSize != 0 {
		return nil, fmt.Errorf("blockdev: page size %d is not a positive multiple of %d", pageSize, SectorSize)
	}
	spp := pageSize / SectorSize
	return &Device{
		store:    store,
		pageSize: pageSize,
		spp:      spp,
		sectors:  int64(store.LogicalPages()) * int64(spp),
		pageBuf:  make([]byte, pageSize),
	}, nil
}

// Sectors returns the device capacity in sectors.
func (d *Device) Sectors() int64 { return d.sectors }

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.sectors * SectorSize }

// check validates a [lba, lba+n) sector range for the named entry point.
func (d *Device) check(op string, lba int64, n int) error {
	return CheckRange(op, lba, n, d.sectors)
}

// ReadSectors fills buf (a multiple of SectorSize long) from consecutive
// sectors starting at lba. Never-written sectors read as 0xFF, flash style.
func (d *Device) ReadSectors(lba int64, buf []byte) error {
	if len(buf)%SectorSize != 0 {
		return AlignError("read", len(buf))
	}
	n := len(buf) / SectorSize
	if err := d.check("read", lba, n); err != nil {
		return err
	}
	for n > 0 {
		lpn := int(lba / int64(d.spp))
		off := int(lba%int64(d.spp)) * SectorSize
		chunk := d.pageSize - off
		if chunk > n*SectorSize {
			chunk = n * SectorSize
		}
		if off == 0 && chunk == d.pageSize {
			if _, err := d.store.ReadPage(lpn, buf[:chunk]); err != nil {
				return err
			}
		} else {
			if _, err := d.store.ReadPage(lpn, d.pageBuf); err != nil {
				return err
			}
			copy(buf[:chunk], d.pageBuf[off:off+chunk])
		}
		buf = buf[chunk:]
		lba += int64(chunk / SectorSize)
		n -= chunk / SectorSize
	}
	return nil
}

// WriteSectors writes buf (a multiple of SectorSize long) to consecutive
// sectors starting at lba, performing read-modify-write for partial pages.
func (d *Device) WriteSectors(lba int64, buf []byte) error {
	if len(buf)%SectorSize != 0 {
		return AlignError("write", len(buf))
	}
	n := len(buf) / SectorSize
	if err := d.check("write", lba, n); err != nil {
		return err
	}
	for n > 0 {
		lpn := int(lba / int64(d.spp))
		off := int(lba%int64(d.spp)) * SectorSize
		chunk := d.pageSize - off
		if chunk > n*SectorSize {
			chunk = n * SectorSize
		}
		if off == 0 && chunk == d.pageSize {
			if err := d.store.WritePage(lpn, buf[:chunk]); err != nil {
				return err
			}
		} else {
			// Read-modify-write the containing page.
			if _, err := d.store.ReadPage(lpn, d.pageBuf); err != nil {
				return err
			}
			copy(d.pageBuf[off:off+chunk], buf[:chunk])
			if err := d.store.WritePage(lpn, d.pageBuf); err != nil {
				return err
			}
		}
		buf = buf[chunk:]
		lba += int64(chunk / SectorSize)
		n -= chunk / SectorSize
	}
	return nil
}

// ReadSector reads one sector.
func (d *Device) ReadSector(lba int64, buf []byte) error {
	if len(buf) != SectorSize {
		return AlignError("read", len(buf))
	}
	return d.ReadSectors(lba, buf)
}

// WriteSector writes one sector.
func (d *Device) WriteSector(lba int64, buf []byte) error {
	if len(buf) != SectorSize {
		return AlignError("write", len(buf))
	}
	return d.WriteSectors(lba, buf)
}

// Discarder is the optional TRIM capability of a page store (ftl and dftl
// implement it; nftl's block-level mapping cannot unmap single pages).
type Discarder interface {
	Discard(lpn int) error
}

// Discard tells the layer that n sectors starting at lba no longer hold
// useful data. Only whole pages fully covered by the range are unmapped
// (partial pages keep their data); stores without TRIM support make this a
// no-op. File systems call it when clusters are freed, cutting future
// garbage-collection copying.
func (d *Device) Discard(lba int64, n int) error {
	if err := d.check("discard", lba, n); err != nil {
		return err
	}
	disc, ok := d.store.(Discarder)
	if !ok {
		return nil
	}
	spp := int64(d.spp)
	firstFull := (lba + spp - 1) / spp
	lastFull := (lba + int64(n)) / spp // exclusive
	for lpn := firstFull; lpn < lastFull; lpn++ {
		if err := disc.Discard(int(lpn)); err != nil {
			return err
		}
	}
	return nil
}
