// Package blockdev adapts a page-granularity Flash Translation Layer driver
// (ftl or nftl) into the 512-byte-sector block device that file systems
// expect — the block-device emulation role the paper's Figure 1 assigns to
// the Flash Translation Layer. Sub-page writes are handled with
// read-modify-write of the containing page. A Device wraps a driver and
// inherits its single-goroutine confinement and determinism.
package blockdev

import (
	"errors"
	"fmt"
)

// SectorSize is the fixed logical sector size, in bytes.
const SectorSize = 512

// PageStore is the page-level interface the adapter drives; both ftl.Driver
// and nftl.Driver satisfy it. The backing chip must retain data
// (nand.Config.StoreData) for the device to be useful.
type PageStore interface {
	ReadPage(lpn int, buf []byte) (bool, error)
	WritePage(lpn int, data []byte) error
	LogicalPages() int
}

// ErrOutOfRange reports an access beyond the device.
var ErrOutOfRange = errors.New("blockdev: sector out of range")

// Device is a sector-addressed block device over a PageStore. Not safe for
// concurrent use.
type Device struct {
	store    PageStore
	pageSize int
	spp      int // sectors per page
	sectors  int64
	pageBuf  []byte
}

// New wraps a page store whose pages are pageSize bytes (a multiple of the
// sector size).
func New(store PageStore, pageSize int) (*Device, error) {
	if pageSize < SectorSize || pageSize%SectorSize != 0 {
		return nil, fmt.Errorf("blockdev: page size %d is not a positive multiple of %d", pageSize, SectorSize)
	}
	spp := pageSize / SectorSize
	return &Device{
		store:    store,
		pageSize: pageSize,
		spp:      spp,
		sectors:  int64(store.LogicalPages()) * int64(spp),
		pageBuf:  make([]byte, pageSize),
	}, nil
}

// Sectors returns the device capacity in sectors.
func (d *Device) Sectors() int64 { return d.sectors }

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.sectors * SectorSize }

// check validates a [lba, lba+n) sector range.
func (d *Device) check(lba int64, n int) error {
	if lba < 0 || n < 0 || lba+int64(n) > d.sectors {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, lba, lba+int64(n), d.sectors)
	}
	return nil
}

// ReadSectors fills buf (a multiple of SectorSize long) from consecutive
// sectors starting at lba. Never-written sectors read as 0xFF, flash style.
func (d *Device) ReadSectors(lba int64, buf []byte) error {
	if len(buf)%SectorSize != 0 {
		return fmt.Errorf("blockdev: read length %d is not sector aligned", len(buf))
	}
	n := len(buf) / SectorSize
	if err := d.check(lba, n); err != nil {
		return err
	}
	for n > 0 {
		lpn := int(lba / int64(d.spp))
		off := int(lba%int64(d.spp)) * SectorSize
		chunk := d.pageSize - off
		if chunk > n*SectorSize {
			chunk = n * SectorSize
		}
		if off == 0 && chunk == d.pageSize {
			if _, err := d.store.ReadPage(lpn, buf[:chunk]); err != nil {
				return err
			}
		} else {
			if _, err := d.store.ReadPage(lpn, d.pageBuf); err != nil {
				return err
			}
			copy(buf[:chunk], d.pageBuf[off:off+chunk])
		}
		buf = buf[chunk:]
		lba += int64(chunk / SectorSize)
		n -= chunk / SectorSize
	}
	return nil
}

// WriteSectors writes buf (a multiple of SectorSize long) to consecutive
// sectors starting at lba, performing read-modify-write for partial pages.
func (d *Device) WriteSectors(lba int64, buf []byte) error {
	if len(buf)%SectorSize != 0 {
		return fmt.Errorf("blockdev: write length %d is not sector aligned", len(buf))
	}
	n := len(buf) / SectorSize
	if err := d.check(lba, n); err != nil {
		return err
	}
	for n > 0 {
		lpn := int(lba / int64(d.spp))
		off := int(lba%int64(d.spp)) * SectorSize
		chunk := d.pageSize - off
		if chunk > n*SectorSize {
			chunk = n * SectorSize
		}
		if off == 0 && chunk == d.pageSize {
			if err := d.store.WritePage(lpn, buf[:chunk]); err != nil {
				return err
			}
		} else {
			// Read-modify-write the containing page.
			if _, err := d.store.ReadPage(lpn, d.pageBuf); err != nil {
				return err
			}
			copy(d.pageBuf[off:off+chunk], buf[:chunk])
			if err := d.store.WritePage(lpn, d.pageBuf); err != nil {
				return err
			}
		}
		buf = buf[chunk:]
		lba += int64(chunk / SectorSize)
		n -= chunk / SectorSize
	}
	return nil
}

// ReadSector reads one sector.
func (d *Device) ReadSector(lba int64, buf []byte) error {
	if len(buf) != SectorSize {
		return fmt.Errorf("blockdev: sector buffer is %d bytes", len(buf))
	}
	return d.ReadSectors(lba, buf)
}

// WriteSector writes one sector.
func (d *Device) WriteSector(lba int64, buf []byte) error {
	if len(buf) != SectorSize {
		return fmt.Errorf("blockdev: sector buffer is %d bytes", len(buf))
	}
	return d.WriteSectors(lba, buf)
}

// Discarder is the optional TRIM capability of a page store (ftl and dftl
// implement it; nftl's block-level mapping cannot unmap single pages).
type Discarder interface {
	Discard(lpn int) error
}

// Discard tells the layer that n sectors starting at lba no longer hold
// useful data. Only whole pages fully covered by the range are unmapped
// (partial pages keep their data); stores without TRIM support make this a
// no-op. File systems call it when clusters are freed, cutting future
// garbage-collection copying.
func (d *Device) Discard(lba int64, n int) error {
	if err := d.check(lba, n); err != nil {
		return err
	}
	disc, ok := d.store.(Discarder)
	if !ok {
		return nil
	}
	spp := int64(d.spp)
	firstFull := (lba + spp - 1) / spp
	lastFull := (lba + int64(n)) / spp // exclusive
	for lpn := firstFull; lpn < lastFull; lpn++ {
		if err := disc.Discard(int(lpn)); err != nil {
			return err
		}
	}
	return nil
}
