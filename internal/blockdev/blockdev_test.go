package blockdev

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"flashswl/internal/ftl"
	"flashswl/internal/mtd"
	"flashswl/internal/nand"
	"flashswl/internal/nftl"
)

func newFTLDevice(t *testing.T) *Device {
	t.Helper()
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 32, PagesPerBlock: 8, PageSize: 2048, SpareSize: 64},
		StoreData: true,
	})
	drv, err := ftl.New(mtd.New(chip), ftl.Config{LogicalPages: 200})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(drv, 2048)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 100); err == nil {
		t.Error("unaligned page size accepted")
	}
	if _, err := New(nil, 0); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestCapacity(t *testing.T) {
	d := newFTLDevice(t)
	if d.Sectors() != 200*4 {
		t.Errorf("Sectors = %d, want 800", d.Sectors())
	}
	if d.Size() != 800*512 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestSectorRoundTrip(t *testing.T) {
	d := newFTLDevice(t)
	sec := bytes.Repeat([]byte{0x5A}, SectorSize)
	if err := d.WriteSector(17, sec); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SectorSize)
	if err := d.ReadSector(17, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sec) {
		t.Error("sector round trip mismatch")
	}
	// Neighbours within the same page are untouched (0xFF = never written).
	if err := d.ReadSector(16, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xFF {
		t.Errorf("neighbour sector = %#x, want 0xFF", got[0])
	}
}

func TestSubPageReadModifyWrite(t *testing.T) {
	d := newFTLDevice(t)
	// Write the full page's 4 sectors with distinct tags, then overwrite
	// only sector 2 of the page.
	full := make([]byte, 4*SectorSize)
	for s := 0; s < 4; s++ {
		for i := 0; i < SectorSize; i++ {
			full[s*SectorSize+i] = byte(s + 1)
		}
	}
	if err := d.WriteSectors(40, full); err != nil {
		t.Fatal(err)
	}
	patch := bytes.Repeat([]byte{0x99}, SectorSize)
	if err := d.WriteSector(42, patch); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*SectorSize)
	if err := d.ReadSectors(40, got); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), full...)
	copy(want[2*SectorSize:], patch)
	if !bytes.Equal(got, want) {
		t.Error("read-modify-write corrupted the page")
	}
}

func TestUnalignedSpans(t *testing.T) {
	d := newFTLDevice(t)
	// A 7-sector write starting mid-page spans three pages.
	buf := make([]byte, 7*SectorSize)
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	if err := d.WriteSectors(2, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7*SectorSize)
	if err := d.ReadSectors(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("unaligned span mismatch")
	}
}

func TestBounds(t *testing.T) {
	d := newFTLDevice(t)
	buf := make([]byte, SectorSize)
	if err := d.ReadSector(-1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative lba: %v", err)
	}
	if err := d.WriteSector(d.Sectors(), buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("past end: %v", err)
	}
	if err := d.ReadSectors(d.Sectors()-1, make([]byte, 2*SectorSize)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("spanning end: %v", err)
	}
	if err := d.ReadSectors(0, make([]byte, 100)); err == nil {
		t.Error("unaligned buffer accepted")
	}
	if err := d.WriteSectors(0, make([]byte, 100)); err == nil {
		t.Error("unaligned buffer accepted")
	}
	if err := d.ReadSector(0, make([]byte, 10)); err == nil {
		t.Error("short sector buffer accepted")
	}
	if err := d.WriteSector(0, make([]byte, 10)); err == nil {
		t.Error("short sector buffer accepted")
	}
}

func TestSectorErrorTyping(t *testing.T) {
	d := newFTLDevice(t)
	var se *SectorError
	err := d.ReadSectors(d.Sectors()-1, make([]byte, 2*SectorSize))
	if !errors.As(err, &se) {
		t.Fatalf("out-of-range error is %T, want *SectorError", err)
	}
	if se.Op != "read" || se.LBA != d.Sectors()-1 || se.Count != 2 || se.Sectors != d.Sectors() {
		t.Errorf("range error fields = %+v", se)
	}
	if !errors.Is(err, ErrOutOfRange) {
		t.Error("range error does not unwrap to ErrOutOfRange")
	}
	err = d.WriteSectors(0, make([]byte, 100))
	if !errors.As(err, &se) {
		t.Fatalf("unaligned error is %T, want *SectorError", err)
	}
	if se.Op != "write" || se.Count != 100 || !errors.Is(err, ErrUnaligned) {
		t.Errorf("alignment error fields = %+v (unwrap Is(ErrUnaligned)=%v)", se, errors.Is(err, ErrUnaligned))
	}
	err = d.Discard(-1, 4)
	if !errors.As(err, &se) || se.Op != "discard" {
		t.Errorf("discard error = %v, want *SectorError with Op discard", err)
	}
}

func TestOverNFTL(t *testing.T) {
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 32, PagesPerBlock: 8, PageSize: 1024, SpareSize: 32},
		StoreData: true,
	})
	drv, err := nftl.New(mtd.New(chip), nftl.Config{VirtualBlocks: 20})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(drv, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	want := map[int64]byte{}
	sec := make([]byte, SectorSize)
	for i := 0; i < 400; i++ {
		lba := int64(rng.Intn(int(d.Sectors())))
		v := byte(rng.Intn(255)) + 1
		for j := range sec {
			sec[j] = v
		}
		if err := d.WriteSector(lba, sec); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		want[lba] = v
	}
	for lba, v := range want {
		if err := d.ReadSector(lba, sec); err != nil {
			t.Fatal(err)
		}
		if sec[0] != v || sec[SectorSize-1] != v {
			t.Fatalf("lba %d = %d, want %d", lba, sec[0], v)
		}
	}
}

// Property: a shadow byte map agrees with the device under random
// sector-granular writes and reads.
func TestShadowProperty(t *testing.T) {
	type op struct {
		LBA uint16
		N   uint8
		Val byte
	}
	f := func(ops []op) bool {
		chip := nand.New(nand.Config{
			Geometry:  nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 1024, SpareSize: 32},
			StoreData: true,
		})
		drv, err := ftl.New(mtd.New(chip), ftl.Config{LogicalPages: 40})
		if err != nil {
			return false
		}
		d, _ := New(drv, 1024)
		shadow := make([]byte, d.Size())
		for i := range shadow {
			shadow[i] = 0xFF
		}
		for _, o := range ops {
			n := int(o.N%4) + 1
			lba := int64(o.LBA) % (d.Sectors() - int64(n))
			buf := bytes.Repeat([]byte{o.Val}, n*SectorSize)
			if err := d.WriteSectors(lba, buf); err != nil {
				return false
			}
			copy(shadow[lba*SectorSize:], buf)
		}
		got := make([]byte, d.Size())
		if err := d.ReadSectors(0, got); err != nil {
			return false
		}
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDiscardUnmapsWholePages(t *testing.T) {
	d := newFTLDevice(t) // 4 sectors per page
	buf := bytes.Repeat([]byte{0xAA}, 12*SectorSize)
	if err := d.WriteSectors(0, buf); err != nil {
		t.Fatal(err)
	}
	// Discard sectors [2, 11): pages 1 (sectors 4-7) and... sector range
	// 2..10 fully covers page 1 only (page 0 partial, page 2 partial).
	if err := d.Discard(2, 9); err != nil {
		t.Fatal(err)
	}
	sec := make([]byte, SectorSize)
	// Page 0 and page 2 keep their data.
	if err := d.ReadSector(0, sec); err != nil || sec[0] != 0xAA {
		t.Errorf("sector 0 lost: %x %v", sec[0], err)
	}
	if err := d.ReadSector(11, sec); err != nil || sec[0] != 0xAA {
		t.Errorf("sector 11 lost: %x %v", sec[0], err)
	}
	// Page 1's sectors read as unmapped filler now.
	if err := d.ReadSector(4, sec); err != nil || sec[0] != 0xFF {
		t.Errorf("discarded sector 4 = %x %v, want FF", sec[0], err)
	}
	if err := d.Discard(-1, 4); err == nil {
		t.Error("out-of-range discard accepted")
	}
}

func TestDiscardNoopWithoutCapability(t *testing.T) {
	// A store lacking Discard: the call must succeed and change nothing.
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 32, PagesPerBlock: 8, PageSize: 1024, SpareSize: 32},
		StoreData: true,
	})
	drv, err := nftl.New(mtd.New(chip), nftl.Config{VirtualBlocks: 20})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := New(drv, 1024)
	sec := bytes.Repeat([]byte{0x42}, SectorSize)
	if err := d.WriteSector(0, sec); err != nil {
		t.Fatal(err)
	}
	if err := d.Discard(0, 2); err != nil {
		t.Fatalf("advisory discard errored: %v", err)
	}
	if err := d.ReadSector(0, sec); err != nil || sec[0] != 0x42 {
		t.Error("no-op discard changed data")
	}
}
