package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.StdDev() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Error("empty Running must report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Errorf("Mean = %g, want 5", r.Mean())
	}
	if r.StdDev() != 2 { // classic population-stddev example
		t.Errorf("StdDev = %g, want 2", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", r.Min(), r.Max())
	}
}

func TestRunningSingleValue(t *testing.T) {
	var r Running
	r.Add(-3)
	if r.Mean() != -3 || r.StdDev() != 0 || r.Min() != -3 || r.Max() != -3 {
		t.Errorf("single value stats wrong: %s", r.String())
	}
}

func TestSummarize(t *testing.T) {
	r := Summarize([]int{1, 2, 3})
	if r.Mean() != 2 || r.Max() != 3 || r.N() != 3 {
		t.Errorf("Summarize = %s", r.String())
	}
}

func TestRunningString(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(3)
	s := r.String()
	for _, want := range []string{"avg=2.0", "max=3", "n=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []int{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want int
	}{{0, 1}, {20, 1}, {50, 3}, {100, 5}, {-5, 1}, {150, 5}}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %d, want %d", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty slice percentile must be 0")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, x := range []int{0, 5, 9, 10, 25, -3} {
		h.Add(x)
	}
	if len(h.Buckets) != 3 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Buckets[0] != 4 || h.Buckets[1] != 1 || h.Buckets[2] != 1 {
		t.Errorf("buckets = %v, want [4 1 1]", h.Buckets)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0)
}

// Property: Welford agrees with the naive two-pass computation.
func TestRunningMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var r Running
		sum := 0.0
		for _, x := range clean {
			r.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		varSum := 0.0
		for _, x := range clean {
			varSum += (x - mean) * (x - mean)
		}
		naiveDev := math.Sqrt(varSum / float64(len(clean)))
		return math.Abs(r.Mean()-mean) < 1e-6 && math.Abs(r.StdDev()-naiveDev) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap([]int{0, 1, 5, 10}, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", out)
	}
	runes := []rune(lines[0] + lines[1])
	if runes[0] != '·' {
		t.Errorf("zero cell = %c, want ·", runes[0])
	}
	if runes[3] != '█' {
		t.Errorf("max cell = %c, want █", runes[3])
	}
	if Heatmap(nil, 4) != "" || Heatmap([]int{1}, 0) != "" {
		t.Error("degenerate inputs must yield empty output")
	}
	// All-zero input renders all dots.
	if got := Heatmap([]int{0, 0}, 2); got != "··\n" {
		t.Errorf("all-zero = %q", got)
	}
	// Non-multiple width still terminates with a newline.
	if got := Heatmap([]int{1, 1, 1}, 2); !strings.HasSuffix(got, "\n") {
		t.Errorf("ragged = %q", got)
	}
}

func TestPercentileSpread(t *testing.T) {
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i + 1 // 1..100
	}
	if got := Percentile(xs, 50); got != 50 {
		t.Errorf("p50 = %d", got)
	}
	if got := Percentile(xs, 99); got != 99 {
		t.Errorf("p99 = %d", got)
	}
	if got := Percentile(xs, 1); got != 1 {
		t.Errorf("p1 = %d", got)
	}
}
