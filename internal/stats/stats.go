// Package stats provides the streaming statistics used to report erase-count
// distributions (Table 4 of the paper): average, standard deviation, and
// maximum, plus simple histograms. Everything is plain single-goroutine
// value arithmetic — no randomness, no clocks — so equal inputs always
// summarize identically.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of values with Welford's algorithm, giving
// numerically stable mean and variance without storing the stream.
type Running struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds a value into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of values added.
func (r Running) N() int64 { return r.n }

// Mean returns the arithmetic mean (0 when empty).
func (r Running) Mean() float64 { return r.mean }

// Var returns the population variance (0 when fewer than two values).
func (r Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest value added (0 when empty).
func (r Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest value added (0 when empty).
func (r Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// String formats the summary as "avg=… dev=… min=… max=… n=…".
func (r Running) String() string {
	return fmt.Sprintf("avg=%.1f dev=%.1f min=%.0f max=%.0f n=%d", r.Mean(), r.StdDev(), r.Min(), r.Max(), r.n)
}

// Summarize computes a Running over a slice of ints (e.g. erase counts).
func Summarize(xs []int) Running {
	var r Running
	for _, x := range xs {
		r.Add(float64(x))
	}
	return r
}

// Percentile returns the p-th percentile (0..100) of the values using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(xs []int, p float64) int {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Histogram counts values into fixed-width buckets starting at zero.
type Histogram struct {
	Width   int
	Buckets []int64
}

// NewHistogram creates a histogram with the given bucket width.
func NewHistogram(width int) *Histogram {
	if width <= 0 {
		panic("stats: histogram width must be positive")
	}
	return &Histogram{Width: width}
}

// Add counts a non-negative value; negative values clamp to bucket 0.
func (h *Histogram) Add(x int) {
	b := 0
	if x > 0 {
		b = x / h.Width
	}
	for len(h.Buckets) <= b {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[b]++
}

// Total returns the number of values added.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Buckets {
		t += c
	}
	return t
}

// Heatmap renders values (e.g. per-block erase counts) as rows of shade
// characters, width cells per row, scaled to the maximum value: a terminal
// wear map. An empty input yields an empty string.
func Heatmap(values []int, width int) string {
	if len(values) == 0 || width < 1 {
		return ""
	}
	max := 0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	shades := []rune("·░▒▓█")
	var b []rune
	for i, v := range values {
		idx := 0
		if max > 0 && v > 0 {
			idx = 1 + v*(len(shades)-2)/max
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
		}
		b = append(b, shades[idx])
		if (i+1)%width == 0 {
			b = append(b, '\n')
		}
	}
	if len(values)%width != 0 {
		b = append(b, '\n')
	}
	return string(b)
}
