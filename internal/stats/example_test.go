package stats_test

import (
	"fmt"

	"flashswl/internal/stats"
)

// ExampleSummarize condenses an erase-count distribution the way Table 4
// reports it.
func ExampleSummarize() {
	counts := []int{900, 905, 890, 910, 895}
	r := stats.Summarize(counts)
	fmt.Printf("avg=%.0f dev=%.1f max=%.0f\n", r.Mean(), r.StdDev(), r.Max())
	// Output: avg=900 dev=7.1 max=910
}

// ExampleHeatmap renders per-block wear as a terminal map.
func ExampleHeatmap() {
	fmt.Print(stats.Heatmap([]int{0, 2, 5, 10, 10, 9, 1, 0}, 4))
	// Output:
	// ·░▒█
	// █▓░·
}
