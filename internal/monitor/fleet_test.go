package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flashswl/internal/fleet"
	"flashswl/internal/nand"
	"flashswl/internal/obs"
	"flashswl/internal/sim"
	"flashswl/internal/trace"
	"flashswl/internal/workload"
)

func TestFleetEndpointsBeforeAttach(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/fleet", "/fleet/heatmap"} {
		if code, _ := get(t, ts, path); code != http.StatusServiceUnavailable {
			t.Errorf("%s before attach: status %d, want 503", path, code)
		}
	}
}

func TestFleetAggregatorFolds(t *testing.T) {
	srv := NewServer()
	agg := NewFleetAggregator(srv, 3, 100, Label{Name: "fleet", Value: "test"})

	agg.OnDeviceSample(1, obs.WearSample{Events: 500, SimTime: time.Hour, MaxErase: 10})
	agg.OnDeviceDone(fleet.DeviceResult{
		Device: 0, FirstWear: 12 * time.Hour, SimTime: 12 * time.Hour,
		Events: 900, MaxErase: 100, WornBlocks: 1,
	})
	agg.OnDeviceDone(fleet.DeviceResult{
		Device: 2, FirstWear: -1, SimTime: 20 * time.Hour, Events: 1200, MaxErase: 60,
	})

	snap := srv.Fleet()
	if snap == nil {
		t.Fatal("no fleet snapshot published")
	}
	if snap.Devices != 3 || snap.Started != 3 || snap.Completed != 2 || snap.Failed != 1 {
		t.Fatalf("counts wrong: %+v", snap)
	}
	if len(snap.FirstWearYears) != 1 {
		t.Fatalf("first-wear distribution wrong: %+v", snap.FirstWearYears)
	}
	wantMean := float64(10+100+60) / 3
	if snap.MeanMaxErase != wantMean {
		t.Fatalf("MeanMaxErase = %v, want %v", snap.MeanMaxErase, wantMean)
	}

	hm := agg.Heatmap()
	if hm.Devices != 3 || len(hm.PerDevice) != 3 {
		t.Fatalf("heatmap shape: %+v", hm)
	}
	if !hm.PerDevice[0].Failed || hm.PerDevice[2].Failed || !hm.PerDevice[2].Done {
		t.Fatalf("heatmap states: %+v", hm.PerDevice)
	}

	// A late sample for a completed device must not regress its Done state.
	agg.OnDeviceSample(0, obs.WearSample{Events: 100})
	if hm := agg.Heatmap(); !hm.PerDevice[0].Done {
		t.Fatal("sample after completion cleared Done")
	}
}

// TestFleetEndToEnd runs a real (tiny) fleet with the aggregator attached and
// reads every fleet endpoint while workers publish concurrently — under
// `go test -race` this exercises the aggregator's locking for real.
func TestFleetEndToEnd(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const devices = 8
	template := sim.Config{
		Geometry:        nand.Geometry{Blocks: 64, PagesPerBlock: 8, PageSize: 512, SpareSize: 16},
		Endurance:       40,
		Layer:           sim.FTL,
		LogicalSectors:  400,
		SWL:             true,
		K:               0,
		T:               4,
		NoSpare:         true,
		StopOnFirstWear: true,
		MaxEvents:       30_000,
		SampleEvery:     500,
	}
	agg := NewFleetAggregator(srv, devices, template.Endurance, Label{Name: "scale", Value: "test"})

	// Poll the endpoints from a second goroutine while the fleet runs, so
	// reads race real publications.
	stop := make(chan struct{})
	polled := make(chan struct{})
	go func() {
		defer close(polled)
		for {
			select {
			case <-stop:
				return
			default:
				resp, err := ts.Client().Get(ts.URL + "/fleet/heatmap")
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	res, err := fleet.Run(fleet.Config{
		Devices:  devices,
		Workers:  4,
		Template: template,
		Seed:     7,
		Source: func(dev int, seed int64) trace.Source {
			m := workload.PaperScaled(400)
			m.Duration = time.Hour
			m.FillSegments = 2
			return m.Infinite(seed)
		},
		OnDeviceDone:   agg.OnDeviceDone,
		OnDeviceSample: agg.OnDeviceSample,
	})
	close(stop)
	<-polled
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}

	code, body := get(t, ts, "/fleet")
	if code != http.StatusOK {
		t.Fatalf("/fleet status %d", code)
	}
	var snap FleetSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/fleet JSON: %v\n%s", err, body)
	}
	if snap.Completed != devices || snap.Failed != res.Failed() {
		t.Fatalf("final fleet snapshot %+v vs result failed=%d", snap, res.Failed())
	}
	if len(snap.FirstWearYears) != res.Failed() {
		t.Fatalf("distribution has %d entries, want %d", len(snap.FirstWearYears), res.Failed())
	}

	code, body = get(t, ts, "/fleet/heatmap")
	if code != http.StatusOK {
		t.Fatalf("/fleet/heatmap status %d", code)
	}
	var hm FleetHeatmap
	if err := json.Unmarshal([]byte(body), &hm); err != nil {
		t.Fatalf("/fleet/heatmap JSON: %v", err)
	}
	for i, d := range hm.PerDevice {
		if !d.Done {
			t.Errorf("device %d not done in final heatmap", i)
		}
		if d.Events != res.Devices[i].Events {
			t.Errorf("device %d events %d, want %d", i, d.Events, res.Devices[i].Events)
		}
	}

	code, body = get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE fleet_devices gauge",
		`fleet_devices{scale="test"} 8`,
		`fleet_completed{scale="test"} 8`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}
