// Package monitor serves live introspection of a running simulation over
// HTTP: Prometheus metrics (/metrics), the per-block erase-count heatmap
// (/heatmap), run progress with an ETA (/progress), and the standard pprof
// profiles (/debug/pprof/).
//
// The package preserves the repo's single-goroutine chip contract (see
// swlint/chipconfine) with a snapshot-publication pattern: the simulation
// goroutine builds immutable Snapshot values — fresh slices and maps, never
// aliasing live simulation state — and publishes them through an
// atomic.Pointer. HTTP handler goroutines only ever load and read published
// snapshots; they never touch the chip, the translation layer, or the
// leveler. See DESIGN.md ("Snapshot publication").
package monitor

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"

	"flashswl/internal/obs"
	"flashswl/internal/obs/chrometrace"
	"flashswl/internal/obs/promtext"
)

// Label aliases promtext.Label so hosts can attach exposition labels
// without importing the encoder.
type Label = promtext.Label

// Progress describes how far a run has come and how it is trending. All
// fields are plain values; a published Progress is never mutated.
type Progress struct {
	// Events and SimHours are the trace events consumed and the simulated
	// time covered so far.
	Events   int64   `json:"events"`
	SimHours float64 `json:"sim_hours"`
	// WallSeconds is the host wall-clock time elapsed since the run began.
	WallSeconds float64 `json:"wall_seconds"`
	// Fraction estimates run completion in [0,1]: events/MaxEvents or
	// simtime/MaxSimTime for bounded runs, max-erase/endurance for
	// run-to-first-wear experiments; 0 when no bound applies.
	Fraction float64 `json:"fraction"`
	// ETASeconds extrapolates the remaining wall time from Fraction and
	// WallSeconds; -1 when Fraction is 0 (unknown).
	ETASeconds float64 `json:"eta_seconds"`
	// Ecnt, Fcnt, and Unevenness mirror the SW Leveler's state (zero when
	// no leveler is attached). Unevenness is the paper's ecnt/fcnt.
	Ecnt       int64   `json:"ecnt"`
	Fcnt       int     `json:"fcnt"`
	Unevenness float64 `json:"unevenness"`
	// MeanErase/MaxErase summarize the wear distribution; Endurance is the
	// per-block limit the run counts against (0 = unlimited).
	MeanErase float64 `json:"mean_erase"`
	MaxErase  int     `json:"max_erase"`
	Endurance int     `json:"endurance"`
	// WornBlocks counts blocks past their endurance; Episodes counts
	// completed leveler episode spans.
	WornBlocks int   `json:"worn_blocks"`
	Episodes   int64 `json:"episodes"`
	// Done marks the final snapshot of a finished run.
	Done bool `json:"done"`
}

// Heatmap is the per-block erase-count distribution at one moment.
type Heatmap struct {
	Blocks int `json:"blocks"`
	// EraseCounts[i] is block i's lifetime erase count. The slice is owned
	// by the snapshot: publishers must hand over a fresh copy.
	EraseCounts []int `json:"erase_counts"`
	Endurance   int   `json:"endurance"`
}

// Snapshot is one immutable published state. Publishers build a new value
// per publication and must not retain or mutate it afterwards.
type Snapshot struct {
	// Metrics is a point-in-time registry snapshot, or nil when the run has
	// no metrics registry (then /metrics serves only the progress samples).
	Metrics *obs.Snapshot
	// Labels are attached to every exposition sample (e.g. layer, scale).
	Labels   []promtext.Label
	Heatmap  Heatmap
	Progress Progress
}

// Server publishes snapshots to HTTP readers. The zero value is not usable;
// call NewServer.
type Server struct {
	snap atomic.Pointer[Snapshot]
	srv  *http.Server
	ln   net.Listener

	// Checkpoint trigger: /checkpoint raises ckptReq, the simulation
	// goroutine test-and-clears it through CheckpointRequested. Disabled
	// (409) until EnableCheckpointTrigger, since a flag nobody polls would
	// accept requests that can never be honored.
	ckptEnabled atomic.Bool
	ckptReq     atomic.Bool

	// Causal-trace view: the last published span window, served as Chrome
	// trace-event JSON by /trace. Published like every snapshot — an
	// immutable copy built on the simulation goroutine.
	traceSnap atomic.Pointer[obs.TraceSnapshot]

	// Fleet view, present only when a FleetAggregator attached itself: the
	// last published fleet snapshot, and the aggregator the heatmap handler
	// asks for a fresh per-device copy (the map is too large to republish on
	// every sample).
	fleetSnap atomic.Pointer[FleetSnapshot]
	fleetAgg  atomic.Pointer[FleetAggregator]
}

// NewServer returns a server with no snapshot yet; endpoints answer 503
// until the first Publish.
func NewServer() *Server { return &Server{} }

// Publish makes snap the state every subsequent request observes. The
// caller transfers ownership: snap and everything it references must not be
// mutated after the call.
func (s *Server) Publish(snap *Snapshot) { s.snap.Store(snap) }

// Snapshot returns the last published snapshot, or nil.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// PublishTrace makes snap the span window /trace serves. Ownership
// transfers as with Publish: hand over an obs.Tracer.Snapshot (or
// SnapshotRecent) copy, never a live ring.
func (s *Server) PublishTrace(snap *obs.TraceSnapshot) { s.traceSnap.Store(snap) }

// Trace returns the last published trace snapshot, or nil.
func (s *Server) Trace() *obs.TraceSnapshot { return s.traceSnap.Load() }

// PublishFleet makes snap the fleet state every subsequent request observes.
// Ownership transfers as with Publish.
func (s *Server) PublishFleet(snap *FleetSnapshot) { s.fleetSnap.Store(snap) }

// Fleet returns the last published fleet snapshot, or nil.
func (s *Server) Fleet() *FleetSnapshot { return s.fleetSnap.Load() }

// attachFleet registers the aggregator behind /fleet/heatmap.
func (s *Server) attachFleet(a *FleetAggregator) { s.fleetAgg.Store(a) }

// EnableCheckpointTrigger announces that the hosted run polls
// CheckpointRequested; until called, /checkpoint answers 409.
func (s *Server) EnableCheckpointTrigger() { s.ckptEnabled.Store(true) }

// CheckpointRequested test-and-clears the /checkpoint trigger. Wire it into
// sim.Config.CheckpointRequested; it is safe to call from the simulation
// goroutine while HTTP handlers raise the flag.
func (s *Server) CheckpointRequested() bool { return s.ckptReq.CompareAndSwap(true, false) }

// Handler returns the monitoring mux: /metrics, /heatmap, /progress,
// /debug/pprof/, and an index at /.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/heatmap", s.handleHeatmap)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/fleet", s.handleFleet)
	mux.HandleFunc("/fleet/heatmap", s.handleFleetHeatmap)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// monitoring endpoints in a background goroutine. It returns the bound
// address, useful when addr requested an ephemeral port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() {
		// ErrServerClosed after Close is the normal shutdown path; any other
		// serve error just ends the monitoring side-channel, never the run.
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. In-flight requests are abandoned; monitoring is
// a side-channel with no state worth draining.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "flashswl run monitor")
	fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
	fmt.Fprintln(w, "  /heatmap       per-block erase counts (JSON)")
	fmt.Fprintln(w, "  /progress      sim vs wall time, ETA, unevenness (JSON)")
	fmt.Fprintln(w, "  /checkpoint    POST: write a resumable checkpoint after the current event")
	fmt.Fprintln(w, "  /trace         recent causal spans (Chrome trace-event JSON; load in Perfetto)")
	fmt.Fprintln(w, "  /fleet         fleet progress and first-failure distribution (JSON)")
	fmt.Fprintln(w, "  /fleet/heatmap per-device fleet wear map (JSON)")
	fmt.Fprintln(w, "  /debug/pprof/  Go runtime profiles")
}

// load returns the current snapshot or answers 503 and returns nil.
func (s *Server) load(w http.ResponseWriter) *Snapshot {
	snap := s.snap.Load()
	if snap == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	fsnap := s.fleetSnap.Load()
	if snap == nil && fsnap == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", promtext.ContentType)
	if snap != nil {
		if snap.Metrics != nil {
			if err := promtext.Write(w, *snap.Metrics, snap.Labels...); err != nil {
				return
			}
		}
		// Progress rides along as free-standing gauges so a scrape needs only
		// one endpoint.
		p := snap.Progress
		for _, g := range []struct {
			name  string
			value float64
		}{
			{"run_events", float64(p.Events)},
			{"run_sim_hours", p.SimHours},
			{"run_wall_seconds", p.WallSeconds},
			{"run_fraction", p.Fraction},
			{"run_unevenness", p.Unevenness},
			{"run_mean_erase", p.MeanErase},
			{"run_max_erase", float64(p.MaxErase)},
			{"run_worn_blocks", float64(p.WornBlocks)},
		} {
			if err := promtext.WriteSample(w, g.name, "gauge", g.value, snap.Labels...); err != nil {
				return
			}
		}
	}
	if fsnap != nil {
		var labels []promtext.Label
		if agg := s.fleetAgg.Load(); agg != nil {
			labels = agg.Labels()
		}
		for _, g := range []struct {
			name  string
			value float64
		}{
			{"fleet_devices", float64(fsnap.Devices)},
			{"fleet_started", float64(fsnap.Started)},
			{"fleet_completed", float64(fsnap.Completed)},
			{"fleet_failed", float64(fsnap.Failed)},
			{"fleet_wall_seconds", fsnap.WallSeconds},
			{"fleet_mean_max_erase", fsnap.MeanMaxErase},
		} {
			if err := promtext.WriteSample(w, g.name, "gauge", g.value, labels...); err != nil {
				return
			}
		}
	}
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	snap := s.fleetSnap.Load()
	if snap == nil {
		http.Error(w, "no fleet snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, snap)
}

func (s *Server) handleFleetHeatmap(w http.ResponseWriter, r *http.Request) {
	agg := s.fleetAgg.Load()
	if agg == nil {
		http.Error(w, "no fleet attached", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, agg.Heatmap())
}

// handleTrace serves the last published span window in Chrome trace-event
// format, directly loadable in Perfetto / chrome://tracing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	snap := s.traceSnap.Load()
	if snap == nil {
		http.Error(w, "no trace published (run without -trace/-tracespans?)", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = chrometrace.Write(w, snap)
}

func (s *Server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	snap := s.load(w)
	if snap == nil {
		return
	}
	writeJSON(w, snap.Heatmap)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	snap := s.load(w)
	if snap == nil {
		return
	}
	writeJSON(w, snap.Progress)
}

// handleCheckpoint raises the checkpoint trigger. The write happens on the
// simulation goroutine after the current trace event, hence 202 rather than
// 200: accepted, not yet done.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "use POST to request a checkpoint", http.StatusMethodNotAllowed)
		return
	}
	if !s.ckptEnabled.Load() {
		http.Error(w, "the run has no checkpoint path configured (-checkpoint)", http.StatusConflict)
		return
	}
	s.ckptReq.Store(true)
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "checkpoint requested; it will be written after the current trace event")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
