package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flashswl/internal/nand"
	"flashswl/internal/obs"
	"flashswl/internal/obs/chrometrace"
	"flashswl/internal/sim"
	"flashswl/internal/workload"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerBeforeFirstPublish(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/heatmap", "/progress"} {
		if code, _ := get(t, ts, path); code != http.StatusServiceUnavailable {
			t.Errorf("%s before publish: status %d, want 503", path, code)
		}
	}
	if code, body := get(t, ts, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", code, body)
	}
	if code, _ := get(t, ts, "/nonsense"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}

func TestServerServesPublishedSnapshot(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reg := obs.NewRegistry()
	reg.Counter("erases_total").Add(77)
	m := reg.Snapshot()
	srv.Publish(&Snapshot{
		Metrics: &m,
		Labels:  []Label{{Name: "layer", Value: "FTL"}},
		Heatmap: Heatmap{Blocks: 4, EraseCounts: []int{1, 2, 3, 4}, Endurance: 100},
		Progress: Progress{
			Events: 5000, SimHours: 1.5, Fraction: 0.5, ETASeconds: 9,
			Unevenness: 42, Endurance: 100,
		},
	})

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`erases_total{layer="FTL"} 77`,
		"# TYPE run_fraction gauge",
		`run_fraction{layer="FTL"} 0.5`,
		`run_unevenness{layer="FTL"} 42`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %q:\n%s", want, body)
		}
	}

	code, body = get(t, ts, "/heatmap")
	if code != http.StatusOK {
		t.Fatalf("/heatmap status %d", code)
	}
	var hm Heatmap
	if err := json.Unmarshal([]byte(body), &hm); err != nil {
		t.Fatalf("/heatmap is not JSON: %v\n%s", err, body)
	}
	if hm.Blocks != 4 || len(hm.EraseCounts) != 4 || hm.EraseCounts[2] != 3 {
		t.Errorf("/heatmap = %+v", hm)
	}

	code, body = get(t, ts, "/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress is not JSON: %v\n%s", err, body)
	}
	if p.Events != 5000 || p.Fraction != 0.5 || p.Unevenness != 42 {
		t.Errorf("/progress = %+v", p)
	}
}

// TestCheckpointTrigger covers the /checkpoint endpoint's full protocol:
// method check, disabled-until-enabled, and the raise/test-and-clear
// handshake with the simulation goroutine.
func TestCheckpointTrigger(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func() (int, string) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/checkpoint", "", nil)
		if err != nil {
			t.Fatalf("POST /checkpoint: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("POST /checkpoint: reading body: %v", err)
		}
		return resp.StatusCode, string(body)
	}

	if code, _ := get(t, ts, "/checkpoint"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /checkpoint: status %d, want 405", code)
	}
	if code, body := post(); code != http.StatusConflict {
		t.Errorf("POST before enable: status %d body %q, want 409", code, body)
	}
	if srv.CheckpointRequested() {
		t.Error("CheckpointRequested true although the 409'd POST must not raise the flag")
	}

	srv.EnableCheckpointTrigger()
	if code, _ := post(); code != http.StatusAccepted {
		t.Errorf("POST after enable: status %d, want 202", code)
	}
	if !srv.CheckpointRequested() {
		t.Error("CheckpointRequested false after an accepted POST")
	}
	if srv.CheckpointRequested() {
		t.Error("CheckpointRequested did not clear the flag on read")
	}

	// Two raises before one poll collapse into a single request — the flag
	// is a level, not a queue.
	post()
	post()
	if !srv.CheckpointRequested() {
		t.Error("flag lost after double raise")
	}
	if srv.CheckpointRequested() {
		t.Error("double raise queued two requests; the flag must be a level")
	}
}

func TestStartServesAndCloses(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if srv.Addr() != addr {
		t.Errorf("Addr() = %q, bound %q", srv.Addr(), addr)
	}
	srv.Publish(&Snapshot{Progress: Progress{Events: 1}})
	resp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestLiveRunEndToEnd drives a real (small) simulation on one goroutine
// while HTTP readers scrape mid-run from others — the race detector build
// validates the snapshot-publication pattern end to end.
func TestLiveRunEndToEnd(t *testing.T) {
	geo := nand.Geometry{Blocks: 64, PagesPerBlock: 16, PageSize: 1024, SpareSize: 32}
	sectors := geo.Capacity() / 512 * 85 / 100
	cfg := sim.Config{
		Geometry:        geo,
		Cell:            nand.MLC2,
		Endurance:       150,
		Layer:           sim.FTL,
		LogicalSectors:  sectors,
		SWL:             true,
		K:               0,
		T:               5,
		NoSpare:         true,
		Seed:            1,
		Metrics:         true,
		SampleEvery:     500,
		StopOnFirstWear: true,
		MaxEvents:       2_000_000,
	}
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var pub *SimPublisher
	cfg.OnSample = func(s obs.WearSample) { pub.OnSample(s) }
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	pub = NewSimPublisher(srv, runner, cfg, Label{Name: "layer", Value: "FTL"})

	done := make(chan *sim.Result, 1)
	go func() {
		m := workload.PaperScaled(sectors)
		m.Seed = 1
		res, err := runner.Run(m.Infinite(1))
		if err != nil {
			t.Errorf("Run: %v", err)
		}
		done <- res
	}()

	// Wait for the first published snapshot, then scrape all endpoints
	// mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Snapshot() == nil {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot published within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	sawMidRun := false
	for i := 0; i < 50; i++ {
		code, body := get(t, ts, "/metrics")
		if code != http.StatusOK || !strings.Contains(body, "erases_total") {
			t.Fatalf("/metrics mid-run: status %d\n%s", code, body)
		}
		code, body = get(t, ts, "/heatmap")
		if code != http.StatusOK {
			t.Fatalf("/heatmap mid-run: status %d", code)
		}
		var hm Heatmap
		if err := json.Unmarshal([]byte(body), &hm); err != nil {
			t.Fatalf("/heatmap mid-run: %v", err)
		}
		if hm.Blocks != geo.Blocks || len(hm.EraseCounts) != geo.Blocks {
			t.Fatalf("/heatmap mid-run = %d blocks, %d counts", hm.Blocks, len(hm.EraseCounts))
		}
		code, body = get(t, ts, "/progress")
		if code != http.StatusOK {
			t.Fatalf("/progress mid-run: status %d", code)
		}
		var p Progress
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			t.Fatalf("/progress mid-run: %v", err)
		}
		if !p.Done {
			sawMidRun = true
		}
		if p.Endurance != cfg.Endurance {
			t.Fatalf("/progress endurance = %d, want %d", p.Endurance, cfg.Endurance)
		}
	}
	if !sawMidRun {
		t.Log("every scrape saw the final snapshot (run finished very fast); coverage is weaker but valid")
	}

	res := <-done
	pub.Finish(res)
	_, body := get(t, ts, "/progress")
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Done || p.Fraction != 1 {
		t.Errorf("final progress = %+v, want done with fraction 1", p)
	}
	if p.Events != res.Events {
		t.Errorf("final events = %d, result %d", p.Events, res.Events)
	}
}

// TestTraceEndpoint publishes trace snapshots from a traced run and checks
// /trace serves Perfetto-loadable trace-event JSON built from them.
func TestTraceEndpoint(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := get(t, ts, "/trace"); code != http.StatusServiceUnavailable {
		t.Fatalf("/trace before publish: status %d, want 503", code)
	}

	geo := nand.Geometry{Blocks: 64, PagesPerBlock: 16, PageSize: 1024, SpareSize: 32}
	sectors := geo.Capacity() / 512 * 85 / 100
	cfg := sim.Config{
		Geometry: geo, Endurance: 1 << 20, Layer: sim.FTL,
		LogicalSectors: sectors, SWL: true, K: 0, T: 3,
		NoSpare: true, Seed: 1, MaxEvents: 4000,
		SampleEvery: 500, TraceSpans: 1 << 14,
	}
	var pub *SimPublisher
	cfg.OnSample = func(s obs.WearSample) { pub.OnSample(s) }
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pub = NewSimPublisher(srv, runner, cfg)
	m := workload.PaperScaled(sectors)
	m.Seed = 1
	res, err := runner.Run(m.Infinite(1))
	if err != nil {
		t.Fatal(err)
	}
	pub.Finish(res)

	code, body := get(t, ts, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	snap, err := chrometrace.Read(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/trace is not valid trace-event JSON: %v", err)
	}
	if len(snap.Spans) == 0 {
		t.Fatal("/trace served no spans from a traced run")
	}
	kinds := map[obs.SpanKind]bool{}
	for _, s := range snap.Spans {
		kinds[s.Kind] = true
	}
	for _, k := range []obs.SpanKind{obs.SpanHostWrite, obs.SpanTranslate, obs.SpanErase} {
		if !kinds[k] {
			t.Errorf("/trace lacks %s spans", k)
		}
	}
}
