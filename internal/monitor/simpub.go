package monitor

import (
	"time"

	"flashswl/internal/obs"
	"flashswl/internal/obs/promtext"
	"flashswl/internal/sim"
)

// SimPublisher adapts one sim.Runner to a Server: hook OnSample into
// sim.Config.OnSample and every wear sample becomes a published Snapshot.
// When the run traces causal spans (sim.Config.TraceSpans), each sample also
// publishes a bounded recent span window for /trace, and Finish publishes
// the full ring.
//
// All methods run on the simulation goroutine (OnSample is invoked by the
// runner itself), so reading the chip and registry here is within the
// single-goroutine chip contract; only the immutable snapshots cross into
// the HTTP goroutines. Wall-clock reads live here — and not in internal/sim
// — because the simulator proper is deterministic by construction (enforced
// by swlint/determinism); the monitor is host-side tooling and may consult
// real time.
type SimPublisher struct {
	srv    *Server
	runner *sim.Runner
	cfg    sim.Config
	labels []promtext.Label
	start  time.Time
}

// NewSimPublisher binds runner (configured by cfg) to srv. The labels are
// attached to every exposition sample. The wall clock starts now.
func NewSimPublisher(srv *Server, runner *sim.Runner, cfg sim.Config, labels ...promtext.Label) *SimPublisher {
	return &SimPublisher{srv: srv, runner: runner, cfg: cfg, labels: labels, start: time.Now()}
}

// OnSample publishes the run state at one wear sample. Wire it into
// sim.Config.OnSample.
func (p *SimPublisher) OnSample(s obs.WearSample) { p.publish(s, false) }

// Finish publishes the terminal snapshot of a completed run.
func (p *SimPublisher) Finish(res *sim.Result) {
	s := obs.WearSample{
		Events:     res.Events,
		SimTime:    res.SimTime,
		MeanErase:  res.EraseStats.Mean(),
		MaxErase:   int(res.EraseStats.Max()),
		WornBlocks: res.WornBlocks,
	}
	p.publish(s, true)
}

func (p *SimPublisher) publish(s obs.WearSample, done bool) {
	endurance := p.runner.DeviceEndurance()
	wall := time.Since(p.start).Seconds()
	frac := p.fraction(s, endurance)
	if done {
		frac = 1
	}
	eta := -1.0
	if frac > 0 && frac < 1 {
		eta = wall * (1 - frac) / frac
	} else if done || frac >= 1 {
		eta = 0
	}
	snap := &Snapshot{
		Labels: p.labels,
		Heatmap: Heatmap{
			Blocks:      p.runner.DeviceGeometry().Blocks,
			EraseCounts: p.runner.DeviceEraseCounts(nil), // fresh slice, snapshot-owned
			Endurance:   endurance,
		},
		Progress: Progress{
			Events:      s.Events,
			SimHours:    s.SimTime.Hours(),
			WallSeconds: wall,
			Fraction:    frac,
			ETASeconds:  eta,
			Ecnt:        s.Ecnt,
			Fcnt:        s.Fcnt,
			Unevenness:  s.Unevenness,
			MeanErase:   s.MeanErase,
			MaxErase:    s.MaxErase,
			Endurance:   endurance,
			WornBlocks:  s.WornBlocks,
			Episodes:    p.runner.EpisodeCount(),
			Done:        done,
		},
	}
	if reg := p.runner.Registry(); reg != nil {
		m := reg.Snapshot()
		snap.Metrics = &m
	}
	if tr := p.runner.Tracer(); tr != nil {
		if done {
			p.srv.PublishTrace(tr.Snapshot())
		} else {
			p.srv.PublishTrace(tr.SnapshotRecent(traceWindow))
		}
	}
	p.srv.Publish(snap)
}

// traceWindow bounds the spans republished per wear sample; the terminal
// snapshot carries the whole ring instead.
const traceWindow = 4096

// fraction estimates completion from whichever bound the run has: trace
// events, simulated time, or — for run-to-first-wear experiments — the
// most-worn block's approach to its endurance limit.
func (p *SimPublisher) fraction(s obs.WearSample, endurance int) float64 {
	f := 0.0
	if p.cfg.MaxEvents > 0 {
		f = max(f, float64(s.Events)/float64(p.cfg.MaxEvents))
	}
	if p.cfg.MaxSimTime > 0 {
		f = max(f, float64(s.SimTime)/float64(p.cfg.MaxSimTime))
	}
	if p.cfg.StopOnFirstWear && endurance > 0 {
		f = max(f, float64(s.MaxErase)/float64(endurance))
	}
	return min(f, 1)
}
