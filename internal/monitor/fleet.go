package monitor

import (
	"sync"
	"time"

	"flashswl/internal/fleet"
	"flashswl/internal/obs"
	"flashswl/internal/obs/promtext"
)

// Fleet monitoring: the aggregator folds the fleet package's concurrent
// per-device callbacks into one fleet-level view — how many devices are
// running, done, and failed, the live first-failure distribution, and a
// per-device wear heatmap — and publishes it to the server the same way the
// single-run publisher does: immutable snapshots behind an atomic pointer,
// nothing simulation-owned ever crossing into an HTTP goroutine.

// FleetDevice is one device's last reported state.
type FleetDevice struct {
	Device     int     `json:"device"`
	Events     int64   `json:"events"`
	SimHours   float64 `json:"sim_hours"`
	MeanErase  float64 `json:"mean_erase"`
	MaxErase   int     `json:"max_erase"`
	WornBlocks int     `json:"worn_blocks"`
	// Done marks a completed device; Failed a completed device whose first
	// block wore out (FirstWearYears then holds when).
	Done           bool    `json:"done"`
	Failed         bool    `json:"failed"`
	FirstWearYears float64 `json:"first_wear_years"`
}

// FleetSnapshot is the fleet-level state at one moment. Published values are
// immutable: every slice is owned by the snapshot.
type FleetSnapshot struct {
	// Devices is the fleet size; Started counts devices that have reported
	// at least one sample or completed; Completed and Failed count finished
	// devices (Failed ⊆ Completed).
	Devices   int `json:"devices"`
	Started   int `json:"started"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Endurance is the per-block limit every device counts against.
	Endurance   int     `json:"endurance"`
	WallSeconds float64 `json:"wall_seconds"`
	// MeanMaxErase averages the per-device maximum erase counts over the
	// devices that have reported — the fleet's wear frontier.
	MeanMaxErase float64 `json:"mean_max_erase"`
	// FirstWearYears lists completed failures' first-wear times, sorted
	// ascending: the live first-failure distribution.
	FirstWearYears []float64 `json:"first_wear_years"`
}

// FleetHeatmap is the per-device wear map: cell i describes device i.
type FleetHeatmap struct {
	Devices   int           `json:"devices"`
	Endurance int           `json:"endurance"`
	PerDevice []FleetDevice `json:"per_device"`
}

// FleetAggregator folds fleet callbacks into published snapshots. Wire
// OnDeviceSample and OnDeviceDone into the matching fleet.Config hooks.
// OnDeviceSample arrives concurrently from worker goroutines, so the fold is
// mutex-guarded; snapshots cross to HTTP readers only as immutable copies.
type FleetAggregator struct {
	srv    *Server
	labels []promtext.Label
	start  time.Time

	mu        sync.Mutex
	devices   int
	endurance int
	dev       []FleetDevice
	started   []bool
	nstarted  int
	completed int
	failed    int
}

// NewFleetAggregator binds a fleet of the given size to srv, enabling the
// /fleet and /fleet/heatmap endpoints and the fleet_* exposition gauges. The
// labels are attached to every fleet exposition sample. The wall clock
// starts now.
func NewFleetAggregator(srv *Server, devices, endurance int, labels ...promtext.Label) *FleetAggregator {
	a := &FleetAggregator{
		srv:       srv,
		labels:    labels,
		start:     time.Now(),
		devices:   devices,
		endurance: endurance,
		dev:       make([]FleetDevice, devices),
		started:   make([]bool, devices),
	}
	srv.attachFleet(a)
	return a
}

// OnDeviceSample records one device's live wear sample. Safe for concurrent
// use (wire into fleet.Config.OnDeviceSample).
func (a *FleetAggregator) OnDeviceSample(dev int, s obs.WearSample) {
	a.mu.Lock()
	if dev >= 0 && dev < a.devices && !a.dev[dev].Done {
		a.dev[dev] = FleetDevice{
			Device:     dev,
			Events:     s.Events,
			SimHours:   s.SimTime.Hours(),
			MeanErase:  s.MeanErase,
			MaxErase:   s.MaxErase,
			WornBlocks: s.WornBlocks,
		}
		a.mark(dev)
	}
	snap := a.snapshotLocked()
	a.mu.Unlock()
	a.srv.PublishFleet(snap)
}

// OnDeviceDone records one device's final result (wire into
// fleet.Config.OnDeviceDone; the fleet calls it serially, but sharing the
// sample path's lock costs nothing).
func (a *FleetAggregator) OnDeviceDone(res fleet.DeviceResult) {
	a.mu.Lock()
	if res.Device >= 0 && res.Device < a.devices {
		d := FleetDevice{
			Device:     res.Device,
			Events:     res.Events,
			SimHours:   res.SimTime.Hours(),
			MeanErase:  res.MeanErase,
			MaxErase:   res.MaxErase,
			WornBlocks: res.WornBlocks,
			Done:       true,
		}
		if res.FirstWear >= 0 {
			d.Failed = true
			d.FirstWearYears = res.FirstWearYears()
			a.failed++
		}
		a.dev[res.Device] = d
		a.completed++
		a.mark(res.Device)
	}
	snap := a.snapshotLocked()
	a.mu.Unlock()
	a.srv.PublishFleet(snap)
}

// mark flags a device as having reported. Callers hold a.mu.
func (a *FleetAggregator) mark(dev int) {
	if !a.started[dev] {
		a.started[dev] = true
		a.nstarted++
	}
}

// snapshotLocked builds an immutable snapshot from the current fold state.
// Callers hold a.mu.
func (a *FleetAggregator) snapshotLocked() *FleetSnapshot {
	snap := &FleetSnapshot{
		Devices:     a.devices,
		Started:     a.nstarted,
		Completed:   a.completed,
		Failed:      a.failed,
		Endurance:   a.endurance,
		WallSeconds: time.Since(a.start).Seconds(),
	}
	sum, n := 0.0, 0
	failures := make([]float64, 0, a.failed)
	for i := range a.dev {
		if !a.started[i] {
			continue
		}
		sum += float64(a.dev[i].MaxErase)
		n++
		if a.dev[i].Failed {
			failures = append(failures, a.dev[i].FirstWearYears)
		}
	}
	if n > 0 {
		snap.MeanMaxErase = sum / float64(n)
	}
	sortFloats(failures)
	snap.FirstWearYears = failures
	return snap
}

// Heatmap builds the per-device wear map (a fresh copy; callers own it).
func (a *FleetAggregator) Heatmap() *FleetHeatmap {
	a.mu.Lock()
	defer a.mu.Unlock()
	hm := &FleetHeatmap{
		Devices:   a.devices,
		Endurance: a.endurance,
		PerDevice: make([]FleetDevice, a.devices),
	}
	copy(hm.PerDevice, a.dev)
	for i := range hm.PerDevice {
		hm.PerDevice[i].Device = i
	}
	return hm
}

// Labels returns the exposition labels the aggregator was built with.
func (a *FleetAggregator) Labels() []promtext.Label { return a.labels }

// sortFloats is insertion sort: failure lists grow one element at a time and
// arrive nearly sorted, and avoiding package sort keeps the hot path lean.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
