package nftl

import (
	"errors"

	"flashswl/internal/mtd"
	"flashswl/internal/nand"
)

// mountScan is what Mount learns about one physical block from its spares.
type mountScan struct {
	vba      int      // owning virtual block, -1 if none/unknown
	written  int      // programmed prefix length
	offsets  []uint16 // block offset stored at each programmed page
	minSeq   uint32   // oldest write sequence seen in the block
	inOrder  bool     // every decodable page's offset equals its position
	occupied bool     // any page programmed
}

// Mount adopts a device that already holds NFTL-managed data, rebuilding the
// virtual-block tables from the spare areas a previous Driver wrote.
//
// Classification works from the per-page logical addresses: every decodable
// page of a block belongs to one VBA (blocks are never shared). A block
// holding any page whose offset does not match its physical position must
// be a replacement block (replacement writes land sequentially, wherever
// the next slot is). When both blocks of a pair look primary-shaped — a
// replacement that happened to receive offsets in physical order — the
// write sequence numbers break the tie: the replacement was allocated
// strictly after the primary's first program, so the block holding the
// oldest write is the primary. Blocks with undecodable or foreign content
// are erased back into the free pool, and a replacement block found full
// (a crash interrupted its merge) is merged during mount.
func Mount(dev *mtd.Driver, cfg Config) (*Driver, error) {
	if cfg.NoSpare {
		return nil, errors.New("nftl: cannot mount without spare areas")
	}
	d, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}

	oob := make([]byte, dev.Info().Geometry.SpareSize)
	scans := make([]mountScan, d.nblocks)
	var maxSeq uint32
	for b := 0; b < d.nblocks; b++ {
		s := &scans[b]
		s.vba = -1
		s.inOrder = true
		if d.role[b] == roleReserved {
			continue
		}
		for p := 0; p < d.ppb; p++ {
			ppn := b*d.ppb + p
			if !dev.IsPageProgrammed(ppn) {
				continue
			}
			s.occupied = true
			if _, err := dev.ReadPage(ppn, nil, oob); err != nil {
				return nil, err
			}
			info, err := nand.DecodeSpare(oob)
			if err != nil {
				s.vba = -2 // foreign data
				break
			}
			lpn := int(info.LBA)
			if lpn < 0 || lpn >= d.LogicalPages() {
				s.vba = -2
				break
			}
			vba, off := lpn/d.ppb, lpn%d.ppb
			switch s.vba {
			case -1:
				s.vba = vba
				s.minSeq = info.Seq
			case vba:
				if info.Seq < s.minSeq {
					s.minSeq = info.Seq
				}
			default:
				s.vba = -2 // mixed VBAs cannot come from this driver
			}
			if s.vba == -2 {
				break
			}
			if info.Seq > maxSeq {
				maxSeq = info.Seq
			}
			for len(s.offsets) < p {
				s.offsets = append(s.offsets, 0) // gap in a sparse primary
			}
			s.offsets = append(s.offsets, uint16(off))
			if off != p {
				s.inOrder = false
			}
			s.written = p + 1
		}
	}

	// Group claimants per VBA and assign roles.
	claim := map[int][]int{}
	for b := range scans {
		if scans[b].occupied && scans[b].vba >= 0 {
			claim[scans[b].vba] = append(claim[scans[b].vba], b)
		}
	}
	d.freeCount = 0
	d.freeQueue = d.freeQueue[:0]
	for vba, blocksOf := range claim {
		primary, replacement := pickPair(scans, blocksOf)
		if primary >= 0 && !scans[primary].inOrder && replacement < 0 {
			// A lone out-of-order block is a replacement whose primary was
			// erased mid-merge; keep it readable as the replacement.
			replacement, primary = primary, -1
		}
		if primary >= 0 {
			d.adopt(primary, rolePrimary, vba)
			d.primary[vba] = int32(primary)
		}
		if replacement >= 0 {
			d.adopt(replacement, roleReplacement, vba)
			d.replacement[vba] = int32(replacement)
			d.replWrites[replacement] = int32(scans[replacement].written)
			base := replacement * d.ppb
			for i, off := range scans[replacement].offsets {
				d.offsets[base+i] = off
			}
		}
	}
	// Everything unclaimed returns to the free pool; occupied-but-unknown
	// blocks are erased first, as firmware does with unrecognizable data.
	for b := 0; b < d.nblocks; b++ {
		if d.role[b] != roleFree {
			continue
		}
		if scans[b].occupied {
			if err := d.dev.EraseBlock(b); err != nil && !errors.Is(err, nand.ErrWornOut) {
				return nil, err
			}
			d.counters.Erases++
		}
		d.freeQueue = append(d.freeQueue, int32(b))
		d.freeCount++
	}
	// A crash can leave a replacement block full without its merge; redo it.
	for vba := range d.primary {
		if rb := d.replacement[vba]; rb != noBlock && int(d.replWrites[rb]) >= d.ppb {
			if err := d.merge(vba); err != nil {
				return nil, err
			}
		}
	}
	d.seq = maxSeq
	return d, nil
}

// pickPair chooses (primary, replacement) among a VBA's claimant blocks:
// the block with the oldest write is the primary; among the rest the newest
// is the replacement (older extras are stale pre-merge leftovers that stay
// unclaimed). It returns -1 slots when absent.
func pickPair(scans []mountScan, blocks []int) (primary, replacement int) {
	if len(blocks) == 0 {
		return -1, -1
	}
	primary = blocks[0]
	for _, b := range blocks[1:] {
		if scans[b].minSeq < scans[primary].minSeq {
			primary = b
		}
	}
	replacement = -1
	for _, b := range blocks {
		if b == primary {
			continue
		}
		if replacement < 0 || scans[b].minSeq > scans[replacement].minSeq {
			replacement = b
		}
	}
	return primary, replacement
}
