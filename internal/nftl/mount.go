package nftl

import (
	"errors"
	"sort"

	"flashswl/internal/mtd"
	"flashswl/internal/nand"
)

// mountScan is what Mount learns about one physical block from its spares.
type mountScan struct {
	vba      int      // owning virtual block, -1 if none/unknown
	written  int      // programmed prefix length
	offsets  []uint16 // block offset stored at each programmed page
	minSeq   uint32   // oldest write sequence seen in the block
	inOrder  bool     // every decodable page's offset equals its position
	occupied bool     // any page programmed
}

// Mount adopts a device that already holds NFTL-managed data, rebuilding the
// virtual-block tables from the spare areas a previous Driver wrote.
//
// Classification works from the per-page logical addresses: every decodable
// page of a block belongs to one VBA (blocks are never shared). A block
// holding any page whose offset does not match its physical position must
// be a replacement block (replacement writes land sequentially, wherever
// the next slot is). When both blocks of a pair look primary-shaped — a
// replacement that happened to receive offsets in physical order — the
// write sequence numbers break the tie: the replacement was allocated
// strictly after the primary's first program, so the block holding the
// oldest write is the primary. Blocks with undecodable or foreign content
// are erased back into the free pool, and a replacement block found full
// (a crash interrupted its merge) is merged during mount.
func Mount(dev *mtd.Driver, cfg Config) (*Driver, error) {
	if cfg.NoSpare {
		return nil, errors.New("nftl: cannot mount without spare areas")
	}
	d, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}

	oob := make([]byte, dev.Info().Geometry.SpareSize)
	scans := make([]mountScan, d.nblocks)
	var maxSeq uint32
	for b := 0; b < d.nblocks; b++ {
		s := &scans[b]
		s.vba = -1
		s.inOrder = true
		if d.role[b] == roleReserved {
			continue
		}
		for p := 0; p < d.ppb; p++ {
			ppn := b*d.ppb + p
			if !dev.IsPageProgrammed(ppn) {
				continue
			}
			s.occupied = true
			if _, err := dev.ReadPage(ppn, nil, oob); err != nil {
				return nil, err
			}
			info, err := nand.DecodeSpare(oob)
			if err != nil {
				s.vba = -2 // foreign data
				break
			}
			lpn := int(info.LBA)
			if lpn < 0 || lpn >= d.LogicalPages() {
				s.vba = -2
				break
			}
			vba, off := lpn/d.ppb, lpn%d.ppb
			switch s.vba {
			case -1:
				s.vba = vba
				s.minSeq = info.Seq
			case vba:
				if info.Seq < s.minSeq {
					s.minSeq = info.Seq
				}
			default:
				s.vba = -2 // mixed VBAs cannot come from this driver
			}
			if s.vba == -2 {
				break
			}
			if info.Seq > maxSeq {
				maxSeq = info.Seq
			}
			for len(s.offsets) < p {
				// A gap is a sparse primary page or a burnt replacement
				// slot; it must not masquerade as a real offset (0), else a
				// remounted dead slot would shadow the true offset-0 copy.
				s.offsets = append(s.offsets, deadOffset)
			}
			s.offsets = append(s.offsets, uint16(off))
			if off != p {
				s.inOrder = false
			}
			s.written = p + 1
		}
	}

	// Group claimants per VBA and assign roles.
	claim := map[int][]int{}
	for b := range scans {
		if scans[b].occupied && scans[b].vba >= 0 {
			claim[scans[b].vba] = append(claim[scans[b].vba], b)
		}
	}
	d.freeCount = 0
	d.freeQueue = d.freeQueue[:0]
	for vba, blocksOf := range claim {
		primary, replacement := pickPair(scans, blocksOf)
		if primary >= 0 {
			d.adopt(primary, rolePrimary, vba)
			d.primary[vba] = int32(primary)
		}
		if replacement >= 0 {
			d.adopt(replacement, roleReplacement, vba)
			d.replacement[vba] = int32(replacement)
			d.replWrites[replacement] = int32(scans[replacement].written)
			base := replacement * d.ppb
			for i, off := range scans[replacement].offsets {
				d.offsets[base+i] = off
			}
		}
	}
	// Everything unclaimed returns to the free pool; occupied-but-unknown
	// blocks are erased first, as firmware does with unrecognizable data.
	// A block that will not erase — worn out, grown bad, or persistently
	// faulted — is retired rather than handed out still holding data.
	for b := 0; b < d.nblocks; b++ {
		if d.role[b] != roleFree {
			continue
		}
		if scans[b].occupied {
			// Mount runs before SetObserver can be called (the driver does
			// not exist outside this function yet), so these cleanup erases
			// cannot reach an event sink; the post-mount CheckConsistency
			// and counter recount cover them instead.
			//lint:ignore swlint/obspair mount precedes observer registration; counters still account the erase
			err := d.dev.EraseBlock(b)
			if err != nil && errors.Is(err, nand.ErrInjected) {
				d.counters.EraseRetries++
				err = d.dev.EraseBlock(b) //lint:ignore swlint/obspair mount precedes observer registration (retry path)
			}
			if err != nil {
				if errors.Is(err, nand.ErrWornOut) || errors.Is(err, nand.ErrInjected) {
					d.role[b] = roleReserved
					d.counters.RetiredBlocks++
					continue
				}
				return nil, err
			}
			d.counters.Erases++
		}
		d.freeQueue = append(d.freeQueue, int32(b))
		d.freeCount++
	}
	// A crash can leave a replacement block full without its merge; redo it.
	for vba := range d.primary {
		if rb := d.replacement[vba]; rb != noBlock && int(d.replWrites[rb]) >= d.ppb {
			if err := d.merge(vba); err != nil {
				return nil, err
			}
		}
	}
	d.seq = maxSeq
	return d, nil
}

// pickPair chooses (primary, replacement) among a VBA's claimant blocks,
// returning -1 for an absent slot; claimants assigned to neither slot stay
// unclaimed and are erased back into the free pool.
//
// A healthy driver keeps at most two blocks per VBA, so extra claimants can
// only be crash debris. Merge erases its source blocks strictly after the
// new primary is fully programmed, which gives the recovery rules:
//
//   - Three or more claimants: a merge was cut before either source was
//     erased. The newest block is the merge target — possibly torn — while
//     the sources still hold every live page, so the target is discarded
//     and the merge redone from the surviving pair.
//   - Two claimants with an in-order (primary-shaped) oldest: the normal
//     primary + replacement pair.
//   - Two claimants with an out-of-order oldest: the true primary was
//     already erased by a fold that was then cut. The newer block is kept
//     only if it is primary-shaped and covers every live offset of the
//     source (the fold completed); a torn fold target is discarded so the
//     surviving replacement stays readable.
func pickPair(scans []mountScan, blocks []int) (primary, replacement int) {
	if len(blocks) == 0 {
		return -1, -1
	}
	sorted := append([]int(nil), blocks...)
	sort.Slice(sorted, func(a, b int) bool { return scans[sorted[a]].minSeq < scans[sorted[b]].minSeq })
	if len(sorted) > 2 {
		sorted = sorted[:2] // drop the cut merge's possibly-torn target
	}
	oldest := sorted[0]
	if len(sorted) == 1 {
		if scans[oldest].inOrder {
			return oldest, -1
		}
		return -1, oldest // a replacement whose primary was erased mid-merge
	}
	newest := sorted[1]
	if scans[oldest].inOrder {
		return oldest, newest
	}
	if scans[newest].inOrder {
		if covers(scans[newest], scans[oldest]) {
			return newest, -1 // completed fold: the source is fully superseded
		}
		return -1, oldest // torn fold target: keep the source
	}
	// Two replacement-shaped blocks cannot come from this driver; keep the
	// one with the newest data.
	return -1, newest
}

// covers reports whether the candidate primary block holds a copy of every
// live offset of the replacement-shaped source block.
func covers(target, source mountScan) bool {
	have := make(map[uint16]bool, len(target.offsets))
	for _, off := range target.offsets {
		if off != deadOffset {
			have[off] = true
		}
	}
	for _, off := range source.offsets {
		if off != deadOffset && !have[off] {
			return false
		}
	}
	return true
}
