package nftl

import (
	"errors"
	"fmt"

	"flashswl/internal/nand"
	"flashswl/internal/obs"
)

// The NFTL Cleaner: garbage collection merges a virtual block's primary and
// replacement blocks into a fresh primary block, erasing the old pair. The
// victim is chosen with the same greedy cost-benefit rule as the FTL
// cleaner — one unit of benefit per invalid page, one unit of cost per valid
// page to copy — over a cyclic scan of the physical blocks (paper §5.1).

// ensureHeadroom merges replacement pairs until the free pool is above the
// watermark.
func (d *Driver) ensureHeadroom() error {
	for d.freeCount <= d.watermark {
		vba, ok := d.pickVictim()
		if !ok {
			return ErrNoSpace
		}
		d.counters.GCRuns++
		if err := d.merge(vba); err != nil {
			return err
		}
	}
	return nil
}

// validPages returns how many of the VBA's offsets have a live copy, plus
// the total pages programmed across its primary and replacement blocks.
func (d *Driver) validPages(vba int) (valid, written int) {
	for i := range d.offScratch {
		d.offScratch[i] = 0
	}
	if rb := d.replacement[vba]; rb != noBlock {
		base := int(rb) * d.ppb
		n := int(d.replWrites[rb])
		written += n
		for i := 0; i < n; i++ {
			off := int(d.offsets[base+i])
			if off == deadOffset {
				continue // burnt slot: written but holds nothing
			}
			w, m := off>>6, uint64(1)<<uint(off&63)
			if d.offScratch[w]&m == 0 {
				d.offScratch[w] |= m
				valid++
			}
		}
	}
	if pb := d.primary[vba]; pb != noBlock {
		base := int(pb) * d.ppb
		for off := 0; off < d.ppb; off++ {
			if !d.dev.IsPageProgrammed(base + off) {
				continue
			}
			written++
			w, m := off>>6, uint64(1)<<uint(off&63)
			if d.offScratch[w]&m == 0 {
				// Not superseded by the replacement block.
				valid++
			}
		}
	}
	return valid, written
}

// pickVictim scans the physical blocks cyclically for a replacement block
// whose pair has more invalid than valid pages; among such candidates the
// pair with the lowest combined erase count wins (the dynamic wear leveling
// the paper's Cleaners already adopt, §5.1). Failing the greedy test it
// falls back to the replacement pair with the most invalid pages. It
// returns the owning VBA.
func (d *Driver) pickVictim() (int, bool) {
	best, bestErases := -1, int(^uint(0)>>1)
	fallback, fallbackInvalid := -1, 0
	for i := 0; i < d.nblocks; i++ {
		b := d.scanPos + i
		if b >= d.nblocks {
			b -= d.nblocks
		}
		if d.role[b] != roleReplacement {
			continue
		}
		vba := int(d.owner[b])
		valid, written := d.validPages(vba)
		invalid := written - valid
		if invalid > valid {
			ec := d.dev.EraseCount(b)
			if pb := d.primary[vba]; pb != noBlock {
				ec += d.dev.EraseCount(int(pb))
			}
			if ec < bestErases {
				best, bestErases = vba, ec
			}
			continue
		}
		if invalid > fallbackInvalid {
			fallback, fallbackInvalid = vba, invalid
		}
	}
	if best >= 0 {
		return best, true
	}
	if fallback >= 0 {
		return fallback, true
	}
	return 0, false
}

// merge folds the newest copy of every offset of the VBA into a fresh
// primary block, then erases and frees the old primary and replacement
// blocks. With no replacement block this is a fold: the primary's live
// pages move to a new block (this is how static wear leveling relocates
// cold data under NFTL).
func (d *Driver) merge(vba int) error {
	oldP := d.primary[vba]
	oldR := d.replacement[vba]
	if oldP == noBlock && oldR == noBlock {
		return nil
	}
	victim := int(oldP)
	if oldP == noBlock {
		victim = int(oldR)
	}
	sp := d.tracer.Begin(obs.SpanGCMerge, victim, int64(vba))
	defer d.tracer.End(sp)
	d.counters.Merges++
	if d.copyBuf == nil {
		d.copyBuf = make([]byte, d.dev.Info().Geometry.PageSize)
	}
	np := noBlock
	for attempt := 0; ; attempt++ {
		b, err := d.takeFreeBlock()
		if err != nil {
			return err
		}
		ok, err := d.copyInto(vba, b)
		if err != nil {
			return err
		}
		if ok {
			np = b
			break
		}
		// The new primary rejected a program even after retries (a grown-bad
		// block): erase or retire it and restart on a fresh block. The
		// sources are untouched, so no data is at risk.
		if err := d.release(b); err != nil {
			return err
		}
		if attempt >= 3 {
			return fmt.Errorf("nftl: merge of virtual block %d kept failing: %w", vba, nand.ErrInjected)
		}
	}
	// Commit the new primary before erasing the sources.
	d.adopt(np, rolePrimary, vba)
	d.primary[vba] = int32(np)
	d.replacement[vba] = noBlock
	if oldP != noBlock {
		if err := d.release(int(oldP)); err != nil {
			return err
		}
	}
	if oldR != noBlock {
		if err := d.release(int(oldR)); err != nil {
			return err
		}
	}
	return nil
}

// copyInto copies the newest copy of every offset of the VBA into block np
// at matching offsets. It reports ok=false when a program into np failed
// even after retries — the caller then restarts the merge on another block.
func (d *Driver) copyInto(vba, np int) (bool, error) {
	copied := 0
	cp := d.tracer.Begin(obs.SpanLiveCopy, np, 0)
	// The span must close on the bail-out paths too: the caller restarts the
	// merge, and the retry's spans would otherwise nest under this orphan.
	defer func() { d.tracer.EndPages(cp, copied) }()
	for off := 0; off < d.ppb; off++ {
		src := d.findLatest(vba, off)
		if src < 0 {
			continue
		}
		if d.cfg.ECC {
			// Scrub while merging: rot on the source page is repaired
			// before the data moves to the new primary.
			if _, err := d.readCorrected(src, d.copyBuf); err != nil {
				return false, err
			}
		} else if _, err := d.dev.ReadPage(src, d.copyBuf, nil); err != nil {
			return false, err
		}
		if err := d.programRetry(np*d.ppb+off, vba*d.ppb+off, d.copyBuf); err != nil {
			if errors.Is(err, nand.ErrInjected) {
				return false, nil
			}
			return false, err
		}
		d.counters.LiveCopies++
		copied++
		if d.inForced {
			d.counters.ForcedCopies++
		}
	}
	if copied > 0 {
		d.emit(obs.EvPagesCopied, np, copied)
	}
	return true, nil
}

// release erases a block and returns it to the free pool, retrying once on
// injected transient faults and retiring the block when its endurance is
// exhausted (on fail-on-wear chips) or the erase keeps failing.
func (d *Driver) release(b int) error {
	sp := d.tracer.Begin(obs.SpanErase, b, 0)
	defer d.tracer.End(sp)
	wasFree := d.role[b] == roleFree
	err := d.dev.EraseBlock(b)
	if err != nil && errors.Is(err, nand.ErrInjected) {
		d.counters.EraseRetries++
		err = d.dev.EraseBlock(b)
	}
	if err != nil {
		if errors.Is(err, nand.ErrWornOut) || errors.Is(err, nand.ErrInjected) {
			d.role[b] = roleReserved
			d.owner[b] = noBlock
			d.counters.RetiredBlocks++
			if wasFree {
				d.freeCount--
			}
			d.emit(obs.EvBlockRetired, b, 0)
			return nil
		}
		return err
	}
	d.counters.Erases++
	if d.inForced {
		d.counters.ForcedErases++
		if b >= d.forcedLo && b < d.forcedHi {
			d.forcedDone[b-d.forcedLo] = true
		}
	}
	d.role[b] = roleFree
	d.owner[b] = noBlock
	d.replWrites[b] = 0
	if !wasFree {
		d.freeCount++
		d.freeQueue = append(d.freeQueue, int32(b))
	}
	d.emit(obs.EvBlockErased, b, 0)
	if d.onErase != nil {
		d.onErase(b)
	}
	return nil
}

// EraseBlockSet garbage-collects every block of block set findex under
// mapping mode k for the SW Leveler (core.Cleaner): primary blocks are
// folded into fresh blocks, replacement blocks are merged with their
// primaries, and free blocks are erased in place.
func (d *Driver) EraseBlockSet(findex, k int) error {
	if k < 0 || findex < 0 {
		return fmt.Errorf("nftl: invalid block set (%d, %d)", findex, k)
	}
	lo := findex << uint(k)
	if lo >= d.nblocks {
		return fmt.Errorf("nftl: block set %d out of range under k=%d", findex, k)
	}
	hi := lo + 1<<uint(k)
	if hi > d.nblocks {
		hi = d.nblocks
	}
	d.counters.ForcedSets++
	if err := d.ensureHeadroom(); err != nil {
		return err
	}
	d.inForced = true
	d.forcedLo, d.forcedHi = lo, hi
	if cap(d.forcedDone) < hi-lo {
		d.forcedDone = make([]bool, hi-lo)
	}
	d.forcedDone = d.forcedDone[:hi-lo]
	for i := range d.forcedDone {
		d.forcedDone[i] = false
	}
	defer func() { d.inForced = false; d.forcedLo, d.forcedHi = 0, 0 }()
	for b := lo; b < hi; b++ {
		// Skip blocks already erased by this pass (merge partners or
		// reused copy destinations): their flags are refreshed.
		if d.forcedDone[b-lo] {
			continue
		}
		switch d.role[b] {
		case roleReserved:
			continue
		case roleFree:
			if err := d.release(b); err != nil {
				return err
			}
		case rolePrimary, roleReplacement:
			// Merging the owner frees this block (it may also free its
			// partner, which could be a later block of the same set —
			// that one will then take the free path).
			if err := d.merge(int(d.owner[b])); err != nil {
				return err
			}
		}
	}
	return nil
}
