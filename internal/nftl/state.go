package nftl

import (
	"fmt"

	"flashswl/internal/wire"
)

// Checkpoint support: the driver's persistent state — the VBA maps, block
// roles and owners, replacement-block write positions and stored offsets,
// free pool, scan position, spare sequence, and counters — serializes to a
// flat record. Transient fields (forced-set bounds, scratch buffers, hooks,
// the derived watermark) are omitted; checkpoints land only between trace
// events, when no merge or EraseBlockSet is in flight.

// driverStateVersion versions the SaveState record.
const driverStateVersion = 1

// SaveState serializes the driver state for a checkpoint.
func (d *Driver) SaveState() ([]byte, error) {
	w := wire.NewWriter()
	w.U8(driverStateVersion)
	w.U32(uint32(d.nblocks))
	w.U32(uint32(d.ppb))
	w.U32(uint32(len(d.primary)))
	w.I32s(d.primary)
	w.I32s(d.replacement)
	w.I32s(d.owner)
	role := make([]byte, len(d.role))
	for i, ro := range d.role {
		role[i] = byte(ro)
	}
	w.Blob(role)
	w.I32s(d.replWrites)
	w.U16s(d.offsets)
	w.I32s(d.freeQueue)
	w.I32(int32(d.freeCount))
	w.I32(int32(d.scanPos))
	w.U32(d.seq)
	w.I64(d.counters.HostReads)
	w.I64(d.counters.HostWrites)
	w.I64(d.counters.GCRuns)
	w.I64(d.counters.Merges)
	w.I64(d.counters.Erases)
	w.I64(d.counters.LiveCopies)
	w.I64(d.counters.ForcedSets)
	w.I64(d.counters.ForcedErases)
	w.I64(d.counters.ForcedCopies)
	w.I64(d.counters.RetiredBlocks)
	w.I64(d.counters.ProgramRetries)
	w.I64(d.counters.EraseRetries)
	w.I64(d.counters.ECCCorrected)
	w.I64(d.counters.Refreshes)
	return w.Bytes(), nil
}

// RestoreState loads state saved by SaveState into a driver built with the
// same device geometry and configuration. On error the driver is unchanged.
func (d *Driver) RestoreState(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U8(); v != driverStateVersion && r.Err() == nil {
		return fmt.Errorf("nftl: state version %d unsupported", v)
	}
	nblocks := int(r.U32())
	ppb := int(r.U32())
	vblocks := int(r.U32())
	primary := r.I32s()
	replacement := r.I32s()
	owner := r.I32s()
	roleBytes := r.Blob()
	replWrites := r.I32s()
	offsets := r.U16s()
	freeQueue := r.I32s()
	freeCount := int(r.I32())
	scanPos := int(r.I32())
	seq := r.U32()
	var c Counters
	c.HostReads, c.HostWrites, c.GCRuns = r.I64(), r.I64(), r.I64()
	//lint:ignore swlint/obspair decoding checkpointed counters, not accounting new copies
	c.Merges, c.Erases, c.LiveCopies = r.I64(), r.I64(), r.I64()
	c.ForcedSets, c.ForcedErases, c.ForcedCopies = r.I64(), r.I64(), r.I64()
	c.RetiredBlocks, c.ProgramRetries, c.EraseRetries = r.I64(), r.I64(), r.I64()
	c.ECCCorrected, c.Refreshes = r.I64(), r.I64()
	if err := r.Close(); err != nil {
		return fmt.Errorf("nftl: state: %w", err)
	}
	if nblocks != d.nblocks || ppb != d.ppb || vblocks != len(d.primary) {
		return fmt.Errorf("nftl: state shape %d blocks × %d pages, %d virtual does not match driver (%d × %d, %d)",
			nblocks, ppb, vblocks, d.nblocks, d.ppb, len(d.primary))
	}
	if len(primary) != vblocks || len(replacement) != vblocks ||
		len(owner) != nblocks || len(roleBytes) != nblocks ||
		len(replWrites) != nblocks || len(offsets) != nblocks*ppb {
		return fmt.Errorf("nftl: corrupt state: table sizes do not match shape")
	}
	for _, b := range primary {
		if b != noBlock && (b < 0 || int(b) >= nblocks) {
			return fmt.Errorf("nftl: corrupt state: primary block %d out of range", b)
		}
	}
	for _, b := range replacement {
		if b != noBlock && (b < 0 || int(b) >= nblocks) {
			return fmt.Errorf("nftl: corrupt state: replacement block %d out of range", b)
		}
	}
	role := make([]blockRole, nblocks)
	for i, b := range roleBytes {
		if b > uint8(roleReserved) {
			return fmt.Errorf("nftl: corrupt state: block role %d", b)
		}
		role[i] = blockRole(b)
	}
	for b := 0; b < nblocks; b++ {
		if o := owner[b]; o != noBlock && (o < 0 || int(o) >= vblocks) {
			return fmt.Errorf("nftl: corrupt state: owner %d out of range", o)
		}
		if n := replWrites[b]; n < 0 || int(n) > ppb {
			return fmt.Errorf("nftl: corrupt state: %d replacement writes in block %d", n, b)
		}
	}
	for _, off := range offsets {
		if off != deadOffset && int(off) >= ppb {
			return fmt.Errorf("nftl: corrupt state: stored offset %d", off)
		}
	}
	for _, b := range freeQueue {
		if b < 0 || int(b) >= nblocks {
			return fmt.Errorf("nftl: corrupt state: queued block %d", b)
		}
	}
	if freeCount < 0 || freeCount > nblocks || scanPos < 0 || scanPos >= nblocks {
		return fmt.Errorf("nftl: corrupt state: free count %d / scan position %d", freeCount, scanPos)
	}
	d.primary, d.replacement, d.owner, d.role = primary, replacement, owner, role
	d.replWrites, d.offsets = replWrites, offsets
	d.freeQueue, d.freeCount, d.scanPos, d.seq = freeQueue, freeCount, scanPos, seq
	d.counters = c
	return nil
}
