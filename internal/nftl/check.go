package nftl

import "fmt"

// CheckConsistency cross-checks the block-mapping state against the device
// for the observability layer's invariant checker. O(pages); meant for test
// and debugging checkpoints.
//
// Verified invariants:
//   - primary/replacement tables and the role/owner arrays agree in both
//     directions (each VBA's blocks claim it back; each claimed block is
//     listed by its owner);
//   - free blocks are fully erased on the chip;
//   - replacement-block slots below the write cursor are programmed unless
//     burnt (deadOffset), slots at or past it are erased, and recorded
//     offsets are in range;
//   - every mapped logical page resolves to a programmed physical page;
//   - the free-block count equals the number of free-role blocks.
func (d *Driver) CheckConsistency() error {
	for vba := range d.primary {
		if pb := d.primary[vba]; pb != noBlock {
			if d.role[pb] != rolePrimary || d.owner[pb] != int32(vba) {
				return fmt.Errorf("nftl: vba %d primary %d has role %d owner %d", vba, pb, d.role[pb], d.owner[pb])
			}
		}
		if rb := d.replacement[vba]; rb != noBlock {
			if d.role[rb] != roleReplacement || d.owner[rb] != int32(vba) {
				return fmt.Errorf("nftl: vba %d replacement %d has role %d owner %d", vba, rb, d.role[rb], d.owner[rb])
			}
		}
	}
	free := 0
	for b := 0; b < d.nblocks; b++ {
		switch d.role[b] {
		case roleFree:
			free++
			if d.owner[b] != noBlock {
				return fmt.Errorf("nftl: free block %d owned by vba %d", b, d.owner[b])
			}
			for p := 0; p < d.ppb; p++ {
				if d.dev.IsPageProgrammed(b*d.ppb + p) {
					return fmt.Errorf("nftl: free block %d has programmed page %d", b, p)
				}
			}
		case rolePrimary:
			vba := d.owner[b]
			if vba == noBlock || int(vba) >= len(d.primary) || d.primary[vba] != int32(b) {
				return fmt.Errorf("nftl: primary block %d not claimed by owner %d", b, vba)
			}
		case roleReplacement:
			vba := d.owner[b]
			if vba == noBlock || int(vba) >= len(d.replacement) || d.replacement[vba] != int32(b) {
				return fmt.Errorf("nftl: replacement block %d not claimed by owner %d", b, vba)
			}
			n := int(d.replWrites[b])
			if n < 0 || n > d.ppb {
				return fmt.Errorf("nftl: replacement block %d write cursor %d out of range", b, n)
			}
			for i := 0; i < d.ppb; i++ {
				ppn := b*d.ppb + i
				prog := d.dev.IsPageProgrammed(ppn)
				switch {
				case i >= n && prog:
					return fmt.Errorf("nftl: replacement block %d page %d programmed past cursor %d", b, i, n)
				case i < n && d.offsets[ppn] != deadOffset:
					if !prog {
						return fmt.Errorf("nftl: replacement block %d slot %d recorded but unprogrammed", b, i)
					}
					if int(d.offsets[ppn]) >= d.ppb {
						return fmt.Errorf("nftl: replacement block %d slot %d offset %d out of range", b, i, d.offsets[ppn])
					}
				}
			}
		}
	}
	if free != d.freeCount {
		return fmt.Errorf("nftl: free counter %d, role array says %d", d.freeCount, free)
	}
	for vba := range d.primary {
		for off := 0; off < d.ppb; off++ {
			if ppn := d.findLatest(vba, off); ppn >= 0 && !d.dev.IsPageProgrammed(ppn) {
				return fmt.Errorf("nftl: lpn %d resolves to unprogrammed page %d", vba*d.ppb+off, ppn)
			}
		}
	}
	return nil
}
