// Package nftl implements NFTL, the block-level Flash Translation Layer of
// Section 2.2 / Figure 2(b) of the paper. A logical page address is split
// into a virtual block address (VBA = LBA / pagesPerBlock) and a block
// offset; each VBA maps to a primary physical block whose pages are written
// in-place at their offset. Overwrites that cannot land in the primary block
// go sequentially into a per-VBA replacement block; when the replacement
// block fills, the valid pages of the pair are merged into a fresh primary
// block and both old blocks are erased.
//
// Like the FTL driver, the package exposes an erase-notification hook and
// EraseBlockSet for the SW Leveler, and nothing else. A Driver shares its
// chip's single-goroutine confinement, is deterministic given its operation
// sequence, and round-trips its mapping state through
// SaveState/RestoreState for checkpoint/resume.
package nftl

import (
	"errors"
	"fmt"

	"flashswl/internal/ecc"
	"flashswl/internal/mtd"
	"flashswl/internal/nand"
	"flashswl/internal/obs"
)

// Sentinel errors.
var (
	// ErrBadLPN reports a logical page number outside the exported space.
	ErrBadLPN = errors.New("nftl: logical page out of range")
	// ErrNoSpace reports that no free block is available and nothing can
	// be merged to produce one.
	ErrNoSpace = errors.New("nftl: no reclaimable space")
)

// Config parameterizes a Driver.
type Config struct {
	// VirtualBlocks is the number of virtual (logical) blocks exported;
	// the logical space is VirtualBlocks × pagesPerBlock pages. Each VBA
	// can pin up to two physical blocks (primary + replacement), so the
	// value must leave slack. Defaults to 85% of available blocks.
	VirtualBlocks int
	// GCFreeFraction is the garbage-collection watermark as a fraction of
	// all blocks (paper: 0.2%). Defaults to 0.002.
	GCFreeFraction float64
	// MinFreeBlocks floors the watermark. Defaults to 3.
	MinFreeBlocks int
	// NoSpare disables per-page SpareInfo writes (see ftl.Config.NoSpare).
	NoSpare bool
	// ECC protects full-page writes with the SmartMedia Hamming code and
	// corrects single-bit errors on full-page reads, exactly as in
	// ftl.Config.ECC. Merges scrub accumulated bit rot.
	ECC bool
	// ReadRefresh relocates a page whose read needed correction by
	// merging its virtual block (NFTL's unit of relocation). Requires ECC.
	ReadRefresh bool
	// Reserved lists physical blocks excluded from the pool.
	Reserved []int
}

// Counters mirrors ftl.Counters for the NFTL driver.
type Counters struct {
	HostReads      int64
	HostWrites     int64
	GCRuns         int64 // merges forced by the free-space watermark
	Merges         int64 // all primary/replacement merges and folds
	Erases         int64
	LiveCopies     int64
	ForcedSets     int64
	ForcedErases   int64
	ForcedCopies   int64
	RetiredBlocks  int64
	ProgramRetries int64 // page programs retried after an injected fault
	EraseRetries   int64 // erases retried after an injected fault
	ECCCorrected   int64 // single-bit errors repaired on reads
	Refreshes      int64 // merges triggered by read refresh
}

type blockRole uint8

const (
	roleFree blockRole = iota
	rolePrimary
	roleReplacement
	roleReserved
)

const noBlock = -1

// deadOffset marks a replacement-block slot whose program failed (or, after
// a remount, a slot that was never programmed): the slot is burnt, holds no
// data, and counts as invalid for garbage collection. Block offsets are
// always < pagesPerBlock, so the sentinel can never collide with a real one.
const deadOffset = 0xFFFF

// Driver is the NFTL instance over one MTD device. Not safe for concurrent
// use.
type Driver struct {
	dev *mtd.Driver
	cfg Config

	ppb     int
	nblocks int

	primary     []int32 // vba → primary block
	replacement []int32 // vba → replacement block
	owner       []int32 // block → owning vba
	role        []blockRole
	replWrites  []int32  // per block: pages written (meaningful for replacements)
	offsets     []uint16 // per physical page of a replacement block: block offset stored there

	freeQueue []int32
	freeCount int
	watermark int
	scanPos   int
	seq       uint32

	forcedLo, forcedHi int // block-set bounds during EraseBlockSet
	forcedDone         []bool

	onErase  func(block int)
	observer obs.EventSink
	tracer   *obs.Tracer
	inForced bool
	counters Counters

	spareBuf   [nand.SpareInfoSize]byte
	oobBuf     []byte // full-spare scratch when ECC is on
	copyBuf    []byte
	pageSize   int
	offScratch []uint64
}

// New creates an NFTL driver over a device whose non-reserved blocks all
// start free.
func New(dev *mtd.Driver, cfg Config) (*Driver, error) {
	nblocks := dev.Blocks()
	ppb := dev.Info().Geometry.PagesPerBlock
	reserved := make(map[int]bool, len(cfg.Reserved))
	for _, b := range cfg.Reserved {
		if b < 0 || b >= nblocks {
			return nil, fmt.Errorf("nftl: reserved block %d out of range", b)
		}
		reserved[b] = true
	}
	available := nblocks - len(reserved)
	if cfg.GCFreeFraction == 0 {
		cfg.GCFreeFraction = 0.002
	}
	if cfg.MinFreeBlocks == 0 {
		cfg.MinFreeBlocks = 3
	}
	if cfg.VirtualBlocks == 0 {
		cfg.VirtualBlocks = available * 85 / 100
		if max := available - (cfg.MinFreeBlocks + 2); cfg.VirtualBlocks > max {
			cfg.VirtualBlocks = max
		}
	}
	if cfg.VirtualBlocks <= 0 {
		return nil, fmt.Errorf("nftl: virtual space %d blocks is empty", cfg.VirtualBlocks)
	}
	minSlack := cfg.MinFreeBlocks + 2
	if cfg.VirtualBlocks > available-minSlack {
		return nil, fmt.Errorf("nftl: %d virtual blocks leave less than %d blocks of slack on %d available",
			cfg.VirtualBlocks, minSlack, available)
	}
	d := &Driver{
		dev:         dev,
		cfg:         cfg,
		ppb:         ppb,
		nblocks:     nblocks,
		primary:     make([]int32, cfg.VirtualBlocks),
		replacement: make([]int32, cfg.VirtualBlocks),
		owner:       make([]int32, nblocks),
		role:        make([]blockRole, nblocks),
		replWrites:  make([]int32, nblocks),
		offsets:     make([]uint16, nblocks*ppb),
		offScratch:  make([]uint64, (ppb+63)/64),
	}
	for i := range d.primary {
		d.primary[i] = noBlock
		d.replacement[i] = noBlock
	}
	for b := 0; b < nblocks; b++ {
		d.owner[b] = noBlock
		if reserved[b] {
			d.role[b] = roleReserved
		} else {
			d.freeQueue = append(d.freeQueue, int32(b))
			d.freeCount++
		}
	}
	d.watermark = int(float64(nblocks) * cfg.GCFreeFraction)
	if d.watermark < cfg.MinFreeBlocks {
		d.watermark = cfg.MinFreeBlocks
	}
	d.pageSize = dev.Info().Geometry.PageSize
	if cfg.ReadRefresh && !cfg.ECC {
		return nil, errors.New("nftl: read refresh requires ECC")
	}
	if cfg.ECC {
		if cfg.NoSpare {
			return nil, errors.New("nftl: ECC needs spare areas")
		}
		if d.pageSize%ecc.ChunkSize != 0 {
			return nil, fmt.Errorf("nftl: page size %d not a multiple of the %d-byte ECC chunk", d.pageSize, ecc.ChunkSize)
		}
		need := nand.SpareInfoSize + d.pageSize/ecc.ChunkSize*ecc.Size
		if dev.Info().Geometry.SpareSize < need {
			return nil, fmt.Errorf("nftl: ECC needs %d spare bytes, device has %d", need, dev.Info().Geometry.SpareSize)
		}
		d.oobBuf = make([]byte, dev.Info().Geometry.SpareSize)
	}
	return d, nil
}

// LogicalPages returns the exported logical space in pages.
func (d *Driver) LogicalPages() int { return len(d.primary) * d.ppb }

// Counters returns a snapshot of the activity counters.
func (d *Driver) Counters() Counters { return d.counters }

// Device returns the underlying MTD driver.
func (d *Driver) Device() *mtd.Driver { return d.dev }

// FreeBlocks returns the number of free blocks in the pool.
func (d *Driver) FreeBlocks() int { return d.freeCount }

// SetOnErase registers the erase observer (the SW Leveler's OnErase).
func (d *Driver) SetOnErase(fn func(block int)) { d.onErase = fn }

// SetObserver registers an event sink for cleaner activity (block erases,
// retirements, merge copy batches). Pass nil to remove it.
func (d *Driver) SetObserver(s obs.EventSink) { d.observer = s }

// SetTracer attaches a causal span tracer: every host write then opens a
// translate span whose children attribute garbage collection, live copies,
// and erases to the write that caused them. Pass nil to remove it; a nil
// tracer costs one branch per span site.
func (d *Driver) SetTracer(t *obs.Tracer) { d.tracer = t }

// emit reports a cleaner event; Forced tags SW Leveler-driven work.
func (d *Driver) emit(kind obs.EventKind, block, pages int) {
	if d.observer == nil {
		return
	}
	d.observer.Observe(obs.Event{Kind: kind, Block: block, Page: -1, Pages: pages, Forced: d.inForced, Findex: -1})
}

// split converts a logical page number into (vba, offset).
func (d *Driver) split(lpn int) (int, int, error) {
	if lpn < 0 || lpn >= d.LogicalPages() {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadLPN, lpn)
	}
	return lpn / d.ppb, lpn % d.ppb, nil
}

// findLatest returns the physical page holding the newest copy of (vba,
// offset), or -1: the replacement block is searched backwards first (later
// writes supersede), then the primary block's in-place page.
func (d *Driver) findLatest(vba, off int) int {
	if rb := d.replacement[vba]; rb != noBlock {
		base := int(rb) * d.ppb
		for i := int(d.replWrites[rb]) - 1; i >= 0; i-- {
			if int(d.offsets[base+i]) == off {
				return base + i
			}
		}
	}
	if pb := d.primary[vba]; pb != noBlock {
		ppn := int(pb)*d.ppb + off
		if d.dev.IsPageProgrammed(ppn) {
			return ppn
		}
	}
	return -1
}

// IsMapped reports whether the logical page has valid data.
func (d *Driver) IsMapped(lpn int) bool {
	vba, off, err := d.split(lpn)
	if err != nil {
		return false
	}
	return d.findLatest(vba, off) >= 0
}

// ReadPage reads the newest copy of the logical page into buf. Unmapped
// pages fill buf with 0xFF and report ok=false.
func (d *Driver) ReadPage(lpn int, buf []byte) (ok bool, err error) {
	vba, off, err := d.split(lpn)
	if err != nil {
		return false, err
	}
	ppn := d.findLatest(vba, off)
	if ppn < 0 {
		for i := range buf {
			buf[i] = 0xFF
		}
		return false, nil
	}
	d.counters.HostReads++
	if d.cfg.ECC && len(buf) == d.pageSize {
		n, err := d.readCorrected(ppn, buf)
		if err != nil {
			return false, err
		}
		if n > 0 && d.cfg.ReadRefresh {
			// Relocate the whole virtual block — NFTL's unit of movement —
			// before more rot accumulates.
			if err := d.merge(vba); err != nil {
				return false, err
			}
			d.counters.Refreshes++
		}
		return true, nil
	}
	if _, err := d.dev.ReadPage(ppn, buf, nil); err != nil {
		return false, err
	}
	return true, nil
}

// WritePage writes data to the logical page: into the primary block's page
// at the matching offset when that page is still erased, otherwise appended
// to the VBA's replacement block. A replacement block that fills up is
// merged immediately.
func (d *Driver) WritePage(lpn int, data []byte) error {
	vba, off, err := d.split(lpn)
	if err != nil {
		return err
	}
	sp := d.tracer.Begin(obs.SpanTranslate, -1, int64(lpn))
	defer d.tracer.End(sp)
	if err := d.ensureHeadroom(); err != nil {
		return err
	}
	pb := d.primary[vba]
	if pb == noBlock {
		b, err := d.takeFreeBlock()
		if err != nil {
			return err
		}
		d.adopt(b, rolePrimary, vba)
		d.primary[vba] = int32(b)
		pb = int32(b)
	}
	primPPN := int(pb)*d.ppb + off
	if !d.dev.IsPageProgrammed(primPPN) {
		err := d.programRetry(primPPN, lpn, data)
		if err == nil {
			d.counters.HostWrites++
			return nil
		}
		if !errors.Is(err, nand.ErrInjected) {
			return err
		}
		// The in-place page is unusable (grown-bad primary or a persistent
		// fault): route the write through the replacement path instead.
	}
	// A grown-bad replacement block can reject every slot; bound how many
	// replacement blocks one write may consume before giving up.
	for blocksTried := 0; blocksTried < 4; blocksTried++ {
		rb := d.replacement[vba]
		if rb == noBlock {
			b, err := d.takeFreeBlock()
			if err != nil {
				return err
			}
			d.adopt(b, roleReplacement, vba)
			d.replacement[vba] = int32(b)
			rb = int32(b)
		}
		for int(d.replWrites[rb]) < d.ppb {
			ppn := int(rb)*d.ppb + int(d.replWrites[rb])
			err := d.programRetry(ppn, lpn, data)
			if err == nil {
				d.counters.HostWrites++
				d.offsets[ppn] = uint16(off)
				d.replWrites[rb]++
				if int(d.replWrites[rb]) == d.ppb {
					return d.merge(vba)
				}
				return nil
			}
			if !errors.Is(err, nand.ErrInjected) {
				return err
			}
			// Burn the failed slot and advance to the next one.
			d.offsets[ppn] = deadOffset
			d.replWrites[rb]++
		}
		// Every remaining slot failed: fold the pair (freeing or retiring
		// the bad replacement block) and try again with a fresh one.
		if err := d.merge(vba); err != nil {
			return err
		}
	}
	return fmt.Errorf("nftl: write of page %d kept failing: %w", lpn, nand.ErrInjected)
}

// programRetry programs one fixed physical page, retrying a couple of times
// on injected transient faults — a rejected program leaves the page erased,
// so the same page can be retried. A persistent failure (a grown-bad block)
// is returned for the caller to route around.
func (d *Driver) programRetry(ppn, lpn int, data []byte) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		err = d.program(ppn, lpn, data)
		if err == nil || !errors.Is(err, nand.ErrInjected) {
			return err
		}
		if attempt < 2 {
			d.counters.ProgramRetries++
		}
	}
	return err
}

// adopt assigns a block a role and owner.
func (d *Driver) adopt(b int, r blockRole, vba int) {
	d.role[b] = r
	d.owner[b] = int32(vba)
	d.replWrites[b] = 0
}

// program writes data plus the logical address to a physical page, with
// Hamming codes appended when ECC is on and a full page is supplied.
func (d *Driver) program(ppn, lpn int, data []byte) error {
	var oob []byte
	if !d.cfg.NoSpare {
		d.seq++
		info := nand.SpareInfo{LBA: uint32(lpn), Seq: d.seq, ECC: nand.ComputeECC(data)}
		if d.cfg.ECC && len(data) == d.pageSize {
			info.Encode(d.oobBuf)
			codes, err := ecc.CalcPage(data)
			if err != nil {
				return err
			}
			copy(d.oobBuf[nand.SpareInfoSize:], codes)
			oob = d.oobBuf[:nand.SpareInfoSize+len(codes)]
		} else {
			oob = info.Encode(d.spareBuf[:])
		}
	}
	return d.dev.WritePage(ppn, data, oob)
}

// readCorrected reads a full page and repairs single-bit errors against the
// stored Hamming codes; pages written without codes pass through.
func (d *Driver) readCorrected(ppn int, buf []byte) (int, error) {
	if _, err := d.dev.ReadPage(ppn, buf, d.oobBuf); err != nil {
		return 0, err
	}
	codes := d.oobBuf[nand.SpareInfoSize : nand.SpareInfoSize+d.pageSize/ecc.ChunkSize*ecc.Size]
	blank := true
	for _, b := range codes {
		if b != 0xFF {
			blank = false
			break
		}
	}
	if blank {
		return 0, nil
	}
	n, err := ecc.CorrectPage(buf, codes)
	if err != nil {
		return n, fmt.Errorf("nftl: page %d: %w", ppn, err)
	}
	d.counters.ECCCorrected += int64(n)
	return n, nil
}

// takeFreeBlock pops the head of the free queue (FIFO rotation through the
// pool — the Allocator's dynamic wear leveling, as in the FTL driver).
func (d *Driver) takeFreeBlock() (int, error) {
	for len(d.freeQueue) > 0 {
		b := int(d.freeQueue[0])
		d.freeQueue = d.freeQueue[1:]
		if d.role[b] != roleFree {
			continue // retired after being queued
		}
		d.freeCount--
		return b, nil
	}
	return 0, ErrNoSpace
}
