package nftl

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"flashswl/internal/mtd"
	"flashswl/internal/nand"
)

// newTestNFTL builds a small device: 16 blocks × 4 pages, 8 virtual blocks
// (32 logical pages).
func newTestNFTL(t *testing.T, cfg Config) (*Driver, *mtd.Driver) {
	t.Helper()
	dev := mtd.New(nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 32, SpareSize: 16},
		StoreData: true,
	}))
	if cfg.VirtualBlocks == 0 {
		cfg.VirtualBlocks = 8
	}
	d, err := New(dev, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, dev
}

func pageData(tag int) []byte { return bytes.Repeat([]byte{byte(tag)}, 32) }

func TestWriteReadRoundTrip(t *testing.T) {
	d, _ := newTestNFTL(t, Config{})
	for lpn := 0; lpn < 32; lpn++ {
		if err := d.WritePage(lpn, pageData(lpn+1)); err != nil {
			t.Fatalf("WritePage(%d): %v", lpn, err)
		}
	}
	buf := make([]byte, 32)
	for lpn := 0; lpn < 32; lpn++ {
		ok, err := d.ReadPage(lpn, buf)
		if !ok || err != nil {
			t.Fatalf("ReadPage(%d) = %v,%v", lpn, ok, err)
		}
		if buf[0] != byte(lpn+1) {
			t.Fatalf("lpn %d = %d, want %d", lpn, buf[0], lpn+1)
		}
	}
}

func TestFirstWriteLandsInPrimaryAtOffset(t *testing.T) {
	d, dev := newTestNFTL(t, Config{})
	// lpn 6 → vba 1, offset 2.
	if err := d.WritePage(6, pageData(9)); err != nil {
		t.Fatal(err)
	}
	pb := int(d.primary[1])
	if pb < 0 {
		t.Fatal("no primary allocated for vba 1")
	}
	if !dev.Chip().IsProgrammed(pb, 2) {
		t.Error("write must land at offset 2 of the primary block")
	}
	if d.replacement[1] != noBlock {
		t.Error("no replacement should exist yet")
	}
}

func TestOverwriteGoesToReplacementSequentially(t *testing.T) {
	d, dev := newTestNFTL(t, Config{})
	// Figure 2(b): repeated writes to the same offsets spill into the
	// replacement block sequentially.
	_ = d.WritePage(6, pageData(1)) // primary, offset 2
	_ = d.WritePage(6, pageData(2)) // replacement slot 0
	_ = d.WritePage(4, pageData(3)) // primary, offset 0
	_ = d.WritePage(4, pageData(4)) // replacement slot 1
	rb := int(d.replacement[1])
	if rb == noBlock {
		t.Fatal("replacement block not allocated")
	}
	if !dev.Chip().IsProgrammed(rb, 0) || !dev.Chip().IsProgrammed(rb, 1) {
		t.Error("replacement writes must fill slots 0 then 1")
	}
	buf := make([]byte, 32)
	if ok, _ := d.ReadPage(6, buf); !ok || buf[0] != 2 {
		t.Errorf("lpn 6 = %d, want newest 2", buf[0])
	}
	if ok, _ := d.ReadPage(4, buf); !ok || buf[0] != 4 {
		t.Errorf("lpn 4 = %d, want newest 4", buf[0])
	}
}

func TestReplacementFullTriggersMerge(t *testing.T) {
	d, _ := newTestNFTL(t, Config{})
	// Fill the primary page then overwrite lpn 4 four times: the fourth
	// overwrite fills the 4-page replacement block and must merge.
	_ = d.WritePage(4, pageData(1))
	_ = d.WritePage(5, pageData(50))
	for v := 2; v <= 5; v++ {
		if err := d.WritePage(4, pageData(v)); err != nil {
			t.Fatal(err)
		}
	}
	c := d.Counters()
	if c.Merges != 1 {
		t.Fatalf("Merges = %d, want 1", c.Merges)
	}
	if c.Erases != 2 {
		t.Errorf("Erases = %d, want 2 (old primary + replacement)", c.Erases)
	}
	if d.replacement[1] != noBlock {
		t.Error("replacement must be cleared after merge")
	}
	buf := make([]byte, 32)
	if ok, _ := d.ReadPage(4, buf); !ok || buf[0] != 5 {
		t.Errorf("lpn 4 after merge = %d, want 5", buf[0])
	}
	if ok, _ := d.ReadPage(5, buf); !ok || buf[0] != 50 {
		t.Errorf("lpn 5 after merge = %d, want 50 (live sibling preserved)", buf[0])
	}
	// Merged copies: offsets 0 (lpn 4) and 1 (lpn 5) were live → 2 copies.
	if c.LiveCopies != 2 {
		t.Errorf("LiveCopies = %d, want 2", c.LiveCopies)
	}
}

func TestUnmappedReadAndBounds(t *testing.T) {
	d, _ := newTestNFTL(t, Config{})
	buf := []byte{0}
	if ok, err := d.ReadPage(3, buf); ok || err != nil || buf[0] != 0xFF {
		t.Errorf("unmapped read = %v,%v,%x", ok, err, buf)
	}
	if _, err := d.ReadPage(32, nil); !errors.Is(err, ErrBadLPN) {
		t.Errorf("ReadPage(32) = %v", err)
	}
	if err := d.WritePage(-1, nil); !errors.Is(err, ErrBadLPN) {
		t.Errorf("WritePage(-1) = %v", err)
	}
	if d.IsMapped(99) || d.IsMapped(0) {
		t.Error("IsMapped wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	dev := mtd.New(nand.New(nand.Config{Geometry: nand.Geometry{Blocks: 8, PagesPerBlock: 4, PageSize: 32, SpareSize: 16}}))
	if _, err := New(dev, Config{VirtualBlocks: 8}); err == nil {
		t.Error("no slack must fail")
	}
	if _, err := New(dev, Config{VirtualBlocks: -2}); err == nil {
		t.Error("negative virtual blocks must fail")
	}
	if _, err := New(dev, Config{Reserved: []int{8}}); err == nil {
		t.Error("bad reserved block must fail")
	}
	if d, err := New(dev, Config{}); err != nil || d.LogicalPages() <= 0 {
		t.Errorf("defaults should produce a usable driver: %v", err)
	}
}

func TestSteadyStateGC(t *testing.T) {
	d, _ := newTestNFTL(t, Config{})
	rng := rand.New(rand.NewSource(42))
	latest := map[int]byte{}
	for i := 0; i < 2000; i++ {
		lpn := rng.Intn(32)
		v := byte(rng.Intn(250)) + 1
		if err := d.WritePage(lpn, bytes.Repeat([]byte{v}, 32)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		latest[lpn] = v
	}
	buf := make([]byte, 32)
	for lpn, v := range latest {
		if ok, err := d.ReadPage(lpn, buf); !ok || err != nil || buf[0] != v {
			t.Fatalf("lpn %d = %d (ok=%v err=%v), want %d", lpn, buf[0], ok, err, v)
		}
	}
	if d.Counters().Merges == 0 {
		t.Error("sustained overwrites must trigger merges")
	}
	if d.FreeBlocks() < 1 {
		t.Error("free pool exhausted")
	}
}

func TestOnEraseHook(t *testing.T) {
	d, _ := newTestNFTL(t, Config{})
	var count int64
	d.SetOnErase(func(b int) { count++ })
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 600; i++ {
		_ = d.WritePage(rng.Intn(32), nil)
	}
	if count != d.Counters().Erases {
		t.Errorf("hook fired %d, counter %d", count, d.Counters().Erases)
	}
	if count == 0 {
		t.Error("expected erases")
	}
}

func TestEraseBlockSetFoldsColdPrimary(t *testing.T) {
	d, dev := newTestNFTL(t, Config{})
	// Cold data: fill vba 0 completely, never touch it again.
	for lpn := 0; lpn < 4; lpn++ {
		if err := d.WritePage(lpn, pageData(100+lpn)); err != nil {
			t.Fatal(err)
		}
	}
	cold := int(d.primary[0])
	before := d.Counters()
	if err := d.EraseBlockSet(cold, 0); err != nil {
		t.Fatalf("EraseBlockSet: %v", err)
	}
	after := d.Counters()
	if int(d.primary[0]) == cold {
		t.Error("cold primary must move to a fresh block")
	}
	if dev.EraseCount(cold) != 1 {
		t.Errorf("cold block erased %d times, want 1", dev.EraseCount(cold))
	}
	if after.ForcedCopies-before.ForcedCopies != 4 {
		t.Errorf("ForcedCopies delta = %d, want 4", after.ForcedCopies-before.ForcedCopies)
	}
	buf := make([]byte, 32)
	for lpn := 0; lpn < 4; lpn++ {
		if ok, _ := d.ReadPage(lpn, buf); !ok || buf[0] != byte(100+lpn) {
			t.Fatalf("cold lpn %d lost: %d", lpn, buf[0])
		}
	}
}

func TestEraseBlockSetMergesReplacementPair(t *testing.T) {
	d, _ := newTestNFTL(t, Config{})
	_ = d.WritePage(4, pageData(1))
	_ = d.WritePage(4, pageData(2)) // creates replacement
	rb := int(d.replacement[1])
	if rb == noBlock {
		t.Fatal("setup: no replacement")
	}
	if err := d.EraseBlockSet(rb, 0); err != nil {
		t.Fatal(err)
	}
	if d.replacement[1] != noBlock {
		t.Error("pair must be merged")
	}
	buf := make([]byte, 32)
	if ok, _ := d.ReadPage(4, buf); !ok || buf[0] != 2 {
		t.Errorf("lpn 4 = %d, want 2", buf[0])
	}
}

func TestEraseBlockSetOnFreeBlock(t *testing.T) {
	d, dev := newTestNFTL(t, Config{})
	if err := d.EraseBlockSet(15, 0); err != nil {
		t.Fatal(err)
	}
	if dev.EraseCount(15) != 1 {
		t.Errorf("free block erase count = %d, want 1", dev.EraseCount(15))
	}
	if d.FreeBlocks() != 16 {
		t.Errorf("free count = %d, want 16", d.FreeBlocks())
	}
}

func TestEraseBlockSetValidation(t *testing.T) {
	d, _ := newTestNFTL(t, Config{})
	if err := d.EraseBlockSet(-1, 0); err == nil {
		t.Error("negative findex")
	}
	if err := d.EraseBlockSet(0, -1); err == nil {
		t.Error("negative k")
	}
	if err := d.EraseBlockSet(99, 0); err == nil {
		t.Error("out of range set")
	}
}

func TestEraseBlockSetSkipsReserved(t *testing.T) {
	dev := mtd.New(nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 32, SpareSize: 16},
		StoreData: true,
	}))
	d, err := New(dev, Config{VirtualBlocks: 6, Reserved: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlockSet(0, 1); err != nil {
		t.Fatal(err)
	}
	if dev.EraseCount(0) != 0 || dev.EraseCount(1) != 0 {
		t.Error("reserved blocks touched")
	}
}

func TestWearRetirement(t *testing.T) {
	dev := mtd.New(nand.New(nand.Config{
		Geometry:   nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 32, SpareSize: 16},
		Endurance:  4,
		FailOnWear: true,
		StoreData:  true,
	}))
	d, err := New(dev, Config{VirtualBlocks: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var writeErr error
	for i := 0; i < 5000; i++ {
		if writeErr = d.WritePage(rng.Intn(24), pageData(i)); writeErr != nil {
			break
		}
	}
	if d.Counters().RetiredBlocks == 0 {
		t.Fatalf("no blocks retired on endurance-4 device (err=%v)", writeErr)
	}
	if writeErr != nil && !errors.Is(writeErr, ErrNoSpace) {
		t.Fatalf("unexpected failure mode: %v", writeErr)
	}
}

// checkInvariants cross-checks the block bookkeeping.
func checkInvariants(d *Driver) error {
	free := 0
	for b := 0; b < d.nblocks; b++ {
		switch d.role[b] {
		case roleFree:
			free++
			if d.owner[b] != noBlock {
				return fmt.Errorf("free block %d has owner %d", b, d.owner[b])
			}
		case rolePrimary:
			vba := int(d.owner[b])
			if vba < 0 || vba >= len(d.primary) || int(d.primary[vba]) != b {
				return fmt.Errorf("primary block %d not owned by its vba", b)
			}
		case roleReplacement:
			vba := int(d.owner[b])
			if vba < 0 || vba >= len(d.replacement) || int(d.replacement[vba]) != b {
				return fmt.Errorf("replacement block %d not owned by its vba", b)
			}
			if d.replWrites[b] < 1 || int(d.replWrites[b]) >= d.ppb {
				return fmt.Errorf("replacement block %d has %d writes (full ones must merge)", b, d.replWrites[b])
			}
		}
	}
	if free != d.freeCount {
		return fmt.Errorf("freeCount %d, recount %d", d.freeCount, free)
	}
	for vba := range d.primary {
		if rb := d.replacement[vba]; rb != noBlock && d.primary[vba] == noBlock {
			return fmt.Errorf("vba %d has replacement without primary", vba)
		}
	}
	return nil
}

// Property: arbitrary interleavings of writes and forced recycles keep the
// structures consistent and the newest data readable.
func TestNFTLInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		dev := mtd.New(nand.New(nand.Config{
			Geometry:  nand.Geometry{Blocks: 12, PagesPerBlock: 4, PageSize: 8, SpareSize: 16},
			StoreData: true,
		}))
		d, err := New(dev, Config{VirtualBlocks: 5})
		if err != nil {
			return false
		}
		latest := map[int]byte{}
		buf := make([]byte, 8)
		for _, op := range ops {
			if op%7 == 6 {
				if err := d.EraseBlockSet(int(op)%12, 0); err != nil {
					return false
				}
			} else {
				lpn := int(op) % 20
				v := byte(op)
				if err := d.WritePage(lpn, bytes.Repeat([]byte{v}, 8)); err != nil {
					return false
				}
				latest[lpn] = v
			}
			if err := checkInvariants(d); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		for lpn, v := range latest {
			if ok, _ := d.ReadPage(lpn, buf); !ok || buf[0] != v {
				t.Logf("lpn %d = %d, want %d", lpn, buf[0], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// errPowerCut simulates power loss for the mount crash tests.
var errPowerCut = errors.New("power cut")

// TestNFTLNeedsRandomProgramOrder documents the MLC incompatibility the
// paper's §5.1 alludes to: NFTL's primary blocks are written in-place at
// arbitrary offsets, which violates sequential-program-only chips.
func TestNFTLNeedsRandomProgramOrder(t *testing.T) {
	dev := mtd.New(nand.New(nand.Config{
		Geometry:          nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 32, SpareSize: 16},
		SequentialProgram: true,
		StoreData:         true,
	}))
	d, err := New(dev, Config{VirtualBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Offset 2 then offset 0 of the same virtual block: the second write
	// must fail on a sequential-program chip.
	if err := d.WritePage(6, pageData(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(4, pageData(2)); !errors.Is(err, nand.ErrProgOrder) {
		t.Fatalf("in-place backward program err = %v, want ErrProgOrder", err)
	}
}

func newECCNFTL(t *testing.T) (*Driver, *nand.Chip) {
	t.Helper()
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 512, SpareSize: 32},
		StoreData: true,
	})
	d, err := New(mtd.New(chip), Config{VirtualBlocks: 8, ECC: true, ReadRefresh: true})
	if err != nil {
		t.Fatalf("New with ECC: %v", err)
	}
	return d, chip
}

func TestNFTLECCCorrectsAndRefreshes(t *testing.T) {
	d, chip := newECCNFTL(t)
	full := bytes.Repeat([]byte{0x6A}, 512)
	if err := d.WritePage(5, full); err != nil {
		t.Fatal(err)
	}
	pb := int(d.primary[1])
	if err := chip.FlipBit(pb, 1, 900); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	ok, err := d.ReadPage(5, buf)
	if !ok || err != nil {
		t.Fatalf("read = %v,%v", ok, err)
	}
	if !bytes.Equal(buf, full) {
		t.Fatal("bit rot not corrected")
	}
	// Two corrections: one fixed the host read's buffer, and the refresh
	// merge scrubbed the still-rotten stored copy while relocating it.
	c := d.Counters()
	if c.ECCCorrected != 2 || c.Refreshes != 1 {
		t.Errorf("corrected=%d refreshes=%d, want 2,1", c.ECCCorrected, c.Refreshes)
	}
	// The refresh merged the virtual block: a fresh primary holds clean data.
	if int(d.primary[1]) == pb {
		t.Error("read refresh must relocate the virtual block")
	}
	if ok, err := d.ReadPage(5, buf); !ok || err != nil || !bytes.Equal(buf, full) {
		t.Fatalf("after refresh: %v %v", ok, err)
	}
}

func TestNFTLECCScrubOnMerge(t *testing.T) {
	d, chip := newECCNFTL(t)
	full := bytes.Repeat([]byte{0x17}, 512)
	if err := d.WritePage(4, full); err != nil {
		t.Fatal(err)
	}
	pb := int(d.primary[1])
	_ = chip.FlipBit(pb, 0, 123)
	// Force the merge via the leveler entry point; the copy must scrub.
	if err := d.EraseBlockSet(pb, 0); err != nil {
		t.Fatal(err)
	}
	if d.Counters().ECCCorrected != 1 {
		t.Errorf("merge did not scrub: %d", d.Counters().ECCCorrected)
	}
	buf := make([]byte, 512)
	if ok, err := d.ReadPage(4, buf); !ok || err != nil || !bytes.Equal(buf, full) {
		t.Fatalf("after scrub: %v %v", ok, err)
	}
}

func TestNFTLECCValidation(t *testing.T) {
	chip := nand.New(nand.Config{
		Geometry: nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 512, SpareSize: 16},
	})
	if _, err := New(mtd.New(chip), Config{VirtualBlocks: 8, ECC: true}); err == nil {
		t.Error("ECC with a tiny spare must fail")
	}
	if _, err := New(mtd.New(chip), Config{VirtualBlocks: 8, ECC: true, NoSpare: true}); err == nil {
		t.Error("ECC with NoSpare must fail")
	}
	if _, err := New(mtd.New(chip), Config{VirtualBlocks: 8, ReadRefresh: true}); err == nil {
		t.Error("ReadRefresh without ECC must fail")
	}
}
