package nftl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"flashswl/internal/mtd"
	"flashswl/internal/nand"
)

func TestMountRebuildsTables(t *testing.T) {
	d, dev := newTestNFTL(t, Config{})
	rng := rand.New(rand.NewSource(21))
	want := map[int]byte{}
	for i := 0; i < 500; i++ {
		lpn := rng.Intn(32)
		v := byte(rng.Intn(250)) + 1
		if err := d.WritePage(lpn, bytes.Repeat([]byte{v}, 32)); err != nil {
			t.Fatal(err)
		}
		want[lpn] = v
	}

	m, err := Mount(dev, Config{VirtualBlocks: 8})
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	buf := make([]byte, 32)
	for lpn, v := range want {
		ok, err := m.ReadPage(lpn, buf)
		if !ok || err != nil {
			t.Fatalf("mounted ReadPage(%d) = %v,%v", lpn, ok, err)
		}
		if buf[0] != v {
			t.Fatalf("lpn %d after mount = %d, want %d", lpn, buf[0], v)
		}
	}
	if err := checkInvariants(m); err != nil {
		t.Fatalf("mounted driver: %v", err)
	}

	// The mounted driver keeps working.
	for i := 0; i < 300; i++ {
		lpn := rng.Intn(32)
		v := byte(rng.Intn(250)) + 1
		if err := m.WritePage(lpn, bytes.Repeat([]byte{v}, 32)); err != nil {
			t.Fatalf("post-mount write: %v", err)
		}
		want[lpn] = v
	}
	for lpn, v := range want {
		if ok, _ := m.ReadPage(lpn, buf); !ok || buf[0] != v {
			t.Fatalf("lpn %d after post-mount writes = %d, want %d", lpn, buf[0], v)
		}
	}
}

func TestMountClassifiesPrimaryAndReplacement(t *testing.T) {
	d, dev := newTestNFTL(t, Config{})
	// vba 1: primary with offsets 0 and 2, replacement with one overwrite.
	_ = d.WritePage(4, pageData(1))
	_ = d.WritePage(6, pageData(2))
	_ = d.WritePage(4, pageData(3)) // replacement slot 0, offset 0
	wantPrimary := int(d.primary[1])
	wantRepl := int(d.replacement[1])

	m, err := Mount(dev, Config{VirtualBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(m.primary[1]); got != wantPrimary {
		t.Errorf("primary = %d, want %d", got, wantPrimary)
	}
	if got := int(m.replacement[1]); got != wantRepl {
		t.Errorf("replacement = %d, want %d", got, wantRepl)
	}
	if m.replWrites[wantRepl] != 1 || int(m.offsets[wantRepl*m.ppb]) != 0 {
		t.Errorf("replacement bookkeeping wrong: writes=%d off=%d",
			m.replWrites[wantRepl], m.offsets[wantRepl*m.ppb])
	}
	buf := make([]byte, 32)
	if ok, _ := m.ReadPage(4, buf); !ok || buf[0] != 3 {
		t.Errorf("lpn 4 = %d, want newest 3", buf[0])
	}
}

func TestMountAmbiguousInOrderReplacement(t *testing.T) {
	// A replacement block that received offsets 0,1 in physical order looks
	// primary-shaped; the seq tiebreak must still classify it correctly.
	d, dev := newTestNFTL(t, Config{})
	_ = d.WritePage(4, pageData(1)) // primary offset 0
	_ = d.WritePage(5, pageData(2)) // primary offset 1
	_ = d.WritePage(4, pageData(3)) // replacement slot 0 ← offset 0
	_ = d.WritePage(5, pageData(4)) // replacement slot 1 ← offset 1
	wantPrimary := int(d.primary[1])
	wantRepl := int(d.replacement[1])

	m, err := Mount(dev, Config{VirtualBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if int(m.primary[1]) != wantPrimary || int(m.replacement[1]) != wantRepl {
		t.Fatalf("pair = (%d,%d), want (%d,%d)", m.primary[1], m.replacement[1], wantPrimary, wantRepl)
	}
	buf := make([]byte, 32)
	if ok, _ := m.ReadPage(4, buf); !ok || buf[0] != 3 {
		t.Errorf("lpn 4 = %d, want 3", buf[0])
	}
	if ok, _ := m.ReadPage(5, buf); !ok || buf[0] != 4 {
		t.Errorf("lpn 5 = %d, want 4", buf[0])
	}
}

func TestMountErasesForeignBlocks(t *testing.T) {
	dev := mtd.New(nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 32, SpareSize: 16},
		StoreData: true,
	}))
	// Write garbage (no decodable spare) into block 5.
	if err := dev.WritePage(dev.PageOf(5, 0), []byte{1, 2, 3}, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	m, err := Mount(dev, Config{VirtualBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dev.EraseCount(5) != 1 {
		t.Errorf("foreign block erase count = %d, want 1", dev.EraseCount(5))
	}
	if m.FreeBlocks() != 16 {
		t.Errorf("free blocks = %d, want 16", m.FreeBlocks())
	}
}

func TestMountRequiresSpare(t *testing.T) {
	_, dev := newTestNFTL(t, Config{})
	if _, err := Mount(dev, Config{VirtualBlocks: 8, NoSpare: true}); err == nil {
		t.Error("Mount must refuse NoSpare configs")
	}
}

func TestMountEmptyDevice(t *testing.T) {
	dev := mtd.New(nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 32, SpareSize: 16},
		StoreData: true,
	}))
	m, err := Mount(dev, Config{VirtualBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 16 {
		t.Errorf("free = %d", m.FreeBlocks())
	}
	if err := m.WritePage(0, pageData(1)); err != nil {
		t.Fatal(err)
	}
}

// TestMountAfterHeavyChurnFuzz mounts after many random workloads and
// verifies the newest data always survives.
func TestMountAfterHeavyChurnFuzz(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d, dev := newTestNFTL(t, Config{})
		rng := rand.New(rand.NewSource(seed))
		want := map[int]byte{}
		n := 100 + rng.Intn(900)
		for i := 0; i < n; i++ {
			lpn := rng.Intn(32)
			v := byte(rng.Intn(250)) + 1
			if err := d.WritePage(lpn, bytes.Repeat([]byte{v}, 32)); err != nil {
				t.Fatal(err)
			}
			want[lpn] = v
		}
		m, err := Mount(dev, Config{VirtualBlocks: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		buf := make([]byte, 32)
		for lpn, v := range want {
			if ok, _ := m.ReadPage(lpn, buf); !ok || buf[0] != v {
				t.Fatalf("seed %d: lpn %d = %d, want %d", seed, lpn, buf[0], v)
			}
		}
		if err := checkInvariants(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestMountAfterPowerCut cuts power (all programs fail) mid-write at many
// points, remounts, and verifies every write completed before the cut is
// readable — NFTL's durability contract.
func TestMountAfterPowerCut(t *testing.T) {
	for cutAfter := 1; cutAfter <= 60; cutAfter += 7 {
		var programs, cutAt int
		cutAt = -1
		chip := nand.New(nand.Config{
			Geometry:  nand.Geometry{Blocks: 16, PagesPerBlock: 4, PageSize: 32, SpareSize: 16},
			StoreData: true,
			FaultHook: func(op nand.Op, b, p int) error {
				if op != nand.OpProgram {
					return nil
				}
				programs++
				if cutAt >= 0 && programs >= cutAt {
					return errPowerCut
				}
				return nil
			},
		})
		dev := mtd.New(chip)
		d, err := New(dev, Config{VirtualBlocks: 8})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(cutAfter)))
		completed := map[int]byte{}
		cutAt = programs + cutAfter + 20 // room for some successful writes
		for i := 0; ; i++ {
			lpn := rng.Intn(32)
			v := byte(rng.Intn(250)) + 1
			if err := d.WritePage(lpn, bytes.Repeat([]byte{v}, 32)); err != nil {
				if !errors.Is(err, errPowerCut) {
					t.Fatalf("cut %d: unexpected error %v", cutAfter, err)
				}
				break
			}
			completed[lpn] = v
			if i > 10_000 {
				t.Fatal("cut never fired")
			}
		}
		// Reboot and remount from the spare areas.
		cutAt = -1
		m, err := Mount(dev, Config{VirtualBlocks: 8})
		if err != nil {
			t.Fatalf("cut %d: Mount: %v", cutAfter, err)
		}
		buf := make([]byte, 32)
		for lpn, v := range completed {
			ok, err := m.ReadPage(lpn, buf)
			if err != nil || !ok || buf[0] != v {
				t.Fatalf("cut %d: lpn %d = %d (ok=%v err=%v), want %d", cutAfter, lpn, buf[0], ok, err, v)
			}
		}
		// And it keeps working.
		if err := m.WritePage(0, bytes.Repeat([]byte{0xEE}, 32)); err != nil {
			t.Fatalf("cut %d: write after reboot: %v", cutAfter, err)
		}
	}
}
