// Package faultinject produces deterministic, seeded fault schedules for the
// simulated NAND chip: transient program/erase failures at configurable
// rates, grown-bad-block campaigns, stored-bit flips (exercising the ECC
// paths), and a power cut that stops the stack after exactly N flash
// operations. An Injector plugs into nand.Config.FaultHook; the same seed
// always yields the same schedule, so every failure a simulation exposes is
// reproducible. An Injector lives on its chip's goroutine, and its dynamic
// state (RNG position, grown-bad list, schedule counters) round-trips
// through SaveState/RestoreState, so a resumed run replays exactly the
// faults the interrupted run still had ahead of it.
package faultinject

import (
	"fmt"
	"sort"

	"flashswl/internal/nand"
	"flashswl/internal/wire"
)

// Config describes a fault schedule. The zero value injects nothing.
type Config struct {
	// Seed drives the injector's private RNG. Zero means 1.
	Seed int64
	// ProgramFailRate is the probability that any single page program is
	// rejected with a transient fault (the layer retries elsewhere).
	ProgramFailRate float64
	// EraseFailRate is the probability that any single block erase is
	// rejected with a transient fault.
	EraseFailRate float64
	// GrownBadEvery, when positive, marks the target block of every Nth
	// erase permanently bad: all later programs and erases of that block
	// fail. This is the grown-bad-block campaign real chips suffer.
	GrownBadEvery int64
	// MaxGrownBad caps the campaign (0 = unlimited). Without a cap a long
	// run would eventually retire every block.
	MaxGrownBad int
	// BitFlipEvery, when positive, flips one pseudo-random stored data bit
	// in the page targeted by every Nth read, before the read proceeds —
	// retention loss for the ECC machinery to correct. Requires a
	// data-retaining chip bound with BindChip; flips on dataless pages are
	// silently skipped.
	BitFlipEvery int64
	// PowerCutAfter, when positive, lets exactly that many flash operations
	// (attempts, including faulted ones) complete and then panics with a
	// PowerCut value on the next one. The simulation harness recovers the
	// panic at its top level; chip operations are atomic, so the cut always
	// lands on a clean operation boundary.
	PowerCutAfter int64
}

// Stats counts what the injector has done.
type Stats struct {
	// Ops is the number of flash operations observed (attempts).
	Ops int64
	// ProgramFaults and EraseFaults count transient rejections.
	ProgramFaults int64
	EraseFaults   int64
	// GrownBad is how many blocks the campaign has marked bad;
	// GrownBadHits how many operations those blocks have rejected.
	GrownBad     int64
	GrownBadHits int64
	// BitFlips counts stored bits actually flipped.
	BitFlips int64
	// PowerCut reports whether the power cut fired.
	PowerCut bool
}

// Transient and permanent fault errors. All wrap nand.ErrInjected, so layers
// key their retry/retire logic on errors.Is(err, nand.ErrInjected) without
// importing this package.
var (
	// ErrProgramFault is a transient program failure.
	ErrProgramFault = fmt.Errorf("faultinject: transient program failure: %w", nand.ErrInjected)
	// ErrEraseFault is a transient erase failure.
	ErrEraseFault = fmt.Errorf("faultinject: transient erase failure: %w", nand.ErrInjected)
	// ErrGrownBad reports an operation on a block the campaign has marked
	// permanently bad. Reads still succeed: a grown-bad block's existing
	// data stays readable, only programs and erases fail.
	ErrGrownBad = fmt.Errorf("faultinject: grown bad block: %w", nand.ErrInjected)
)

// PowerCut is the panic value (and error) of a fired power cut.
type PowerCut struct {
	// Ops is how many flash operations completed before the cut.
	Ops int64
}

// Error implements error so a recovered cut can be recorded in a Result.
func (p PowerCut) Error() string {
	return fmt.Sprintf("faultinject: power cut after %d flash operations", p.Ops)
}

// AsPowerCut reports whether a recovered panic value is a power cut.
func AsPowerCut(r any) (PowerCut, bool) {
	p, ok := r.(PowerCut)
	return p, ok
}

// Injector is one reproducible fault schedule bound to at most one chip.
// Like the chip itself it is not safe for concurrent use; parallel runs each
// build their own Injector from a shared Config.
type Injector struct {
	cfg      Config
	rng      uint64
	chip     *nand.Chip
	bad      map[int]bool
	erases   int64
	reads    int64
	armed    bool
	disabled bool
	stats    Stats
}

// New builds an injector from a schedule description.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		cfg:   cfg,
		rng:   uint64(seed),
		bad:   make(map[int]bool),
		armed: cfg.PowerCutAfter > 0,
	}
}

// BindChip attaches the chip whose stored data bit-flip faults mutate. The
// chip must retain data (nand.Config.StoreData) for flips to land.
func (i *Injector) BindChip(c *nand.Chip) { i.chip = c }

// Stats returns a snapshot of the activity counters.
func (i *Injector) Stats() Stats { return i.stats }

// IsBad reports whether the campaign has marked the block grown-bad.
func (i *Injector) IsBad(block int) bool { return i.bad[block] }

// DisarmPowerCut prevents the power cut from firing (again); the remount
// phase of a recovery harness runs with the cut disarmed.
func (i *Injector) DisarmPowerCut() { i.armed = false }

// Disarm switches every fault off while keeping the statistics; recovery
// harnesses call it so the verification remount runs on quiet hardware.
func (i *Injector) Disarm() {
	i.armed = false
	i.disabled = true
}

// next is a splitmix64 step.
func (i *Injector) next() uint64 {
	i.rng += 0x9E3779B97F4A7C15
	z := i.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// chance samples a uniform [0,1) variate and compares it against rate.
func (i *Injector) chance(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(i.next()>>11)/(1<<53) < rate
}

// injectorStateVersion versions the SaveState record.
const injectorStateVersion = 1

// SaveState serializes the injector's full dynamic state — RNG position,
// grown-bad set, schedule counters, arming, and statistics — so a
// checkpointed run resumes with the remaining fault schedule intact.
func (i *Injector) SaveState() []byte {
	w := wire.NewWriter()
	w.U8(injectorStateVersion)
	w.U64(i.rng)
	bad := make([]int32, 0, len(i.bad))
	for b := range i.bad {
		bad = append(bad, int32(b))
	}
	sort.Slice(bad, func(a, b int) bool { return bad[a] < bad[b] })
	w.I32s(bad)
	w.I64(i.erases)
	w.I64(i.reads)
	w.Bool(i.armed)
	w.Bool(i.disabled)
	w.I64(i.stats.Ops)
	w.I64(i.stats.ProgramFaults)
	w.I64(i.stats.EraseFaults)
	w.I64(i.stats.GrownBad)
	w.I64(i.stats.GrownBadHits)
	w.I64(i.stats.BitFlips)
	w.Bool(i.stats.PowerCut)
	return w.Bytes()
}

// RestoreState restores state saved from an injector built with the same
// Config. On error the injector is left unchanged.
func (i *Injector) RestoreState(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U8(); v != injectorStateVersion && r.Err() == nil {
		return fmt.Errorf("faultinject: state version %d unsupported", v)
	}
	rng := r.U64()
	badList := r.I32s()
	erases, reads := r.I64(), r.I64()
	armed, disabled := r.Bool(), r.Bool()
	var st Stats
	st.Ops, st.ProgramFaults, st.EraseFaults = r.I64(), r.I64(), r.I64()
	st.GrownBad, st.GrownBadHits, st.BitFlips = r.I64(), r.I64(), r.I64()
	st.PowerCut = r.Bool()
	if err := r.Close(); err != nil {
		return fmt.Errorf("faultinject: state: %w", err)
	}
	bad := make(map[int]bool, len(badList))
	for _, b := range badList {
		bad[int(b)] = true
	}
	i.rng, i.bad, i.erases, i.reads, i.armed, i.disabled, i.stats =
		rng, bad, erases, reads, armed, disabled, st
	return nil
}

// Hook is the nand.Config.FaultHook. It observes every chip primitive before
// it executes and may reject it with an error wrapping nand.ErrInjected; the
// chip then abandons the operation with no state change. When the power cut
// is due it panics with a PowerCut value instead of returning.
func (i *Injector) Hook(op nand.Op, block, page int) error {
	if i.disabled {
		return nil
	}
	if i.armed && i.stats.Ops >= i.cfg.PowerCutAfter {
		i.stats.PowerCut = true
		i.armed = false
		panic(PowerCut{Ops: i.stats.Ops})
	}
	i.stats.Ops++
	switch op {
	case nand.OpRead:
		i.reads++
		if i.cfg.BitFlipEvery > 0 && i.reads%i.cfg.BitFlipEvery == 0 && i.chip != nil {
			bits := i.chip.Geometry().PageSize * 8
			if err := i.chip.FlipBit(block, page, int(i.next()%uint64(bits))); err == nil {
				i.stats.BitFlips++
			}
		}
	case nand.OpProgram:
		if i.bad[block] {
			i.stats.GrownBadHits++
			return ErrGrownBad
		}
		if i.chance(i.cfg.ProgramFailRate) {
			i.stats.ProgramFaults++
			return ErrProgramFault
		}
	case nand.OpErase:
		if i.bad[block] {
			i.stats.GrownBadHits++
			return ErrGrownBad
		}
		i.erases++
		if i.cfg.GrownBadEvery > 0 && i.erases%i.cfg.GrownBadEvery == 0 &&
			(i.cfg.MaxGrownBad == 0 || len(i.bad) < i.cfg.MaxGrownBad) {
			i.bad[block] = true
			i.stats.GrownBad++
			i.stats.GrownBadHits++
			return ErrGrownBad
		}
		if i.chance(i.cfg.EraseFailRate) {
			i.stats.EraseFaults++
			return ErrEraseFault
		}
	}
	return nil
}
