package faultinject

import (
	"errors"
	"testing"

	"flashswl/internal/nand"
)

func TestZeroConfigInjectsNothing(t *testing.T) {
	i := New(Config{})
	for op := 0; op < 3000; op++ {
		if err := i.Hook(nand.Op(op%3), op%16, op%8); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
	s := i.Stats()
	if s.Ops != 3000 {
		t.Errorf("Ops = %d, want 3000", s.Ops)
	}
	if s.ProgramFaults+s.EraseFaults+s.GrownBad+s.BitFlips != 0 || s.PowerCut {
		t.Errorf("zero config produced faults: %+v", s)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, ProgramFailRate: 0.05, EraseFailRate: 0.05, GrownBadEvery: 37, MaxGrownBad: 3}
	run := func() (Stats, []bool) {
		i := New(cfg)
		var faults []bool
		for op := 0; op < 5000; op++ {
			err := i.Hook(nand.Op(op%3), op%16, op%8)
			faults = append(faults, err != nil)
		}
		return i.Stats(), faults
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	for op := range f1 {
		if f1[op] != f2[op] {
			t.Fatalf("op %d faulted in one run only", op)
		}
	}
	if s1.ProgramFaults == 0 || s1.EraseFaults == 0 {
		t.Errorf("5%% rates over 5000 ops produced no faults: %+v", s1)
	}
	s3 := func() Stats {
		i := New(Config{Seed: 43, ProgramFailRate: 0.05, EraseFailRate: 0.05, GrownBadEvery: 37, MaxGrownBad: 3})
		for op := 0; op < 5000; op++ {
			_ = i.Hook(nand.Op(op%3), op%16, op%8)
		}
		return i.Stats()
	}()
	if s3 == s1 {
		t.Error("different seeds produced identical schedules")
	}
}

func TestTransientFaultsWrapErrInjected(t *testing.T) {
	i := New(Config{ProgramFailRate: 1, EraseFailRate: 1})
	if err := i.Hook(nand.OpProgram, 0, 0); !errors.Is(err, nand.ErrInjected) || !errors.Is(err, ErrProgramFault) {
		t.Errorf("program fault = %v", err)
	}
	if err := i.Hook(nand.OpErase, 0, -1); !errors.Is(err, nand.ErrInjected) || !errors.Is(err, ErrEraseFault) {
		t.Errorf("erase fault = %v", err)
	}
	if err := i.Hook(nand.OpRead, 0, 0); err != nil {
		t.Errorf("reads must never fault transiently, got %v", err)
	}
}

func TestGrownBadCampaign(t *testing.T) {
	i := New(Config{GrownBadEvery: 10, MaxGrownBad: 2})
	bad := 0
	for e := 0; e < 100; e++ {
		block := e % 64
		if err := i.Hook(nand.OpErase, block, -1); err != nil {
			if !errors.Is(err, ErrGrownBad) {
				t.Fatalf("erase %d: %v", e, err)
			}
			bad++
		}
	}
	s := i.Stats()
	if s.GrownBad != 2 {
		t.Errorf("GrownBad = %d, want cap 2", s.GrownBad)
	}
	// Exactly erases 10 and 20 marked their targets (blocks 9 and 19).
	for _, b := range []int{9, 19} {
		if !i.IsBad(b) {
			t.Errorf("block %d should be grown-bad", b)
		}
		if err := i.Hook(nand.OpProgram, b, 0); !errors.Is(err, ErrGrownBad) {
			t.Errorf("program on bad block %d = %v", b, err)
		}
		if err := i.Hook(nand.OpRead, b, 0); err != nil {
			t.Errorf("read on bad block %d = %v (data must stay readable)", b, err)
		}
	}
	if i.IsBad(29) {
		t.Error("campaign exceeded its cap")
	}
}

func TestPowerCutExactOpCount(t *testing.T) {
	const n = 123
	i := New(Config{PowerCutAfter: n})
	var cut PowerCut
	fired := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				cut, fired = AsPowerCut(r)
				if !fired {
					panic(r)
				}
			}
		}()
		for op := 0; op < 10*n; op++ {
			_ = i.Hook(nand.OpProgram, op%16, op%8)
		}
	}()
	if !fired {
		t.Fatal("power cut never fired")
	}
	if cut.Ops != n {
		t.Errorf("cut after %d ops, want %d", cut.Ops, n)
	}
	if !i.Stats().PowerCut {
		t.Error("stats must record the cut")
	}
	// Disarmed after firing: the harness can keep using the chip.
	for op := 0; op < 50; op++ {
		_ = i.Hook(nand.OpProgram, 0, 0)
	}
	if got := i.Stats().Ops; got != n+50 {
		t.Errorf("post-cut ops = %d, want %d", got, n+50)
	}
	if cut.Error() == "" {
		t.Error("PowerCut must describe itself as an error")
	}
}

func TestDisarmSilencesEverything(t *testing.T) {
	i := New(Config{ProgramFailRate: 1, EraseFailRate: 1, GrownBadEvery: 1, PowerCutAfter: 1})
	_ = i.Hook(nand.OpErase, 3, -1)
	before := i.Stats()
	i.Disarm()
	for op := 0; op < 100; op++ {
		if err := i.Hook(nand.Op(op%3), op%8, 0); err != nil {
			t.Fatalf("disarmed injector faulted: %v", err)
		}
	}
	if i.Stats() != before {
		t.Errorf("Disarm must freeze the stats: %+v vs %+v", i.Stats(), before)
	}
}

func TestBitFlipsLandOnStoredData(t *testing.T) {
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 8, PagesPerBlock: 4, PageSize: 256, SpareSize: 8},
		StoreData: true,
	})
	i := New(Config{BitFlipEvery: 2})
	i.BindChip(chip)
	data := make([]byte, 256)
	if err := chip.ProgramPage(0, 0, data, nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		_ = i.Hook(nand.OpRead, 0, 0)
	}
	if i.Stats().BitFlips == 0 {
		t.Fatal("no bits flipped over 8 reads at BitFlipEvery=2")
	}
	buf := make([]byte, 256)
	if _, err := chip.ReadPage(0, 0, buf, nil); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for j := range buf {
		if buf[j] != 0 {
			diff++
		}
	}
	if diff == 0 {
		t.Error("flips recorded but stored data unchanged")
	}
}
