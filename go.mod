module flashswl

go 1.22
