// Package flashswl's benchmark harness regenerates every table and figure
// of the paper (DAC 2007, Chang/Hsieh/Kuo) and times the ablations called
// out in DESIGN.md. Each BenchmarkTableN / BenchmarkFigureN runs the full
// experiment behind that exhibit once per iteration at the quick scale and
// reports the headline quantity as a custom metric; `go run
// ./cmd/experiments` prints the same rows at the default (larger) scale.
package flashswl_test

import (
	"fmt"
	"testing"
	"time"

	"flashswl/internal/core"
	"flashswl/internal/experiments"
	"flashswl/internal/ftl"
	"flashswl/internal/hotdata"
	"flashswl/internal/mtd"
	"flashswl/internal/nand"
	"flashswl/internal/nftl"
	"flashswl/internal/sim"
	"flashswl/internal/trace"
	"flashswl/internal/workload"
)

// BenchmarkTable1BETSize regenerates Table 1 (BET bytes across capacities
// and mapping modes).
func BenchmarkTable1BETSize(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		for _, r := range rows {
			for _, v := range r.Bytes {
				total += v
			}
		}
	}
	if total == 0 {
		b.Fatal("empty table")
	}
	// The k=0 / 4 GB corner: 4096 bytes, per the paper.
	b.ReportMetric(float64(experiments.Table1()[0].Bytes[5]), "k0-4GB-bytes")
}

// BenchmarkTable2ExtraErases regenerates Table 2 (worst-case extra block
// erases, analytic).
func BenchmarkTable2ExtraErases(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2()
	}
	b.ReportMetric(rows[0].IncreasedPct, "row1-pct")
}

// BenchmarkTable3ExtraCopies regenerates Table 3 (worst-case extra
// live-page copyings, analytic).
func BenchmarkTable3ExtraCopies(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3()
	}
	b.ReportMetric(rows[0].IncreasedPct, "row1-pct")
}

// BenchmarkTable4EraseDistribution regenerates Table 4 (erase-count
// average/deviation/maximum after the aging span) at the quick scale and
// reports how much SWL shrinks the FTL deviation.
func BenchmarkTable4EraseDistribution(b *testing.B) {
	sc := experiments.QuickScale()
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		aged, err := experiments.RunAged(sc, []int{0, 3}, []float64{100, 1000})
		if err != nil {
			b.Fatal(err)
		}
		rows = aged.Table4()
	}
	// rows[0] is the FTL baseline, rows[1] is FTL+SWL k=0 T=100.
	b.ReportMetric(rows[0].Dev, "ftl-dev")
	b.ReportMetric(rows[1].Dev, "ftl-swl-dev")
}

// benchFigure5 runs one Figure 5 sub-figure at the quick scale and reports
// the first-failure improvement of SWL(k=0, T=100) over the baseline.
func benchFigure5(b *testing.B, layer sim.LayerKind) {
	sc := experiments.QuickScale()
	var s *experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = experiments.Figure5(sc, layer, []int{0, 3}, []float64{100, 1000})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := s.CellAt(0, 100)
	b.ReportMetric(s.Baseline*365*24, "baseline-hours")
	b.ReportMetric(100*(best.Value/s.Baseline-1), "improvement-pct")
}

// BenchmarkFigure5FirstFailure regenerates Figure 5 for both layers.
func BenchmarkFigure5FirstFailure(b *testing.B) {
	b.Run("FTL", func(b *testing.B) { benchFigure5(b, sim.FTL) })
	b.Run("NFTL", func(b *testing.B) { benchFigure5(b, sim.NFTL) })
}

// benchAgedRatio runs the fixed-span sweep and reports the (k=0, T=100)
// ratio for one layer, either erases (Figure 6) or copies (Figure 7).
func benchAgedRatio(b *testing.B, layer sim.LayerKind, copies bool) {
	sc := experiments.QuickScale()
	var v float64
	for i := 0; i < b.N; i++ {
		aged, err := experiments.RunAged(sc, []int{0}, []float64{100})
		if err != nil {
			b.Fatal(err)
		}
		s := aged.Figure6(layer)
		if copies {
			s = aged.Figure7(layer)
		}
		v = s.CellAt(0, 100).Value
	}
	b.ReportMetric(v, "ratio-pct")
}

// BenchmarkFigure6ExtraErases regenerates Figure 6 (increased ratio of
// block erases, baseline = 100%).
func BenchmarkFigure6ExtraErases(b *testing.B) {
	b.Run("FTL", func(b *testing.B) { benchAgedRatio(b, sim.FTL, false) })
	b.Run("NFTL", func(b *testing.B) { benchAgedRatio(b, sim.NFTL, false) })
}

// BenchmarkFigure7ExtraCopies regenerates Figure 7 (increased ratio of
// live-page copyings, baseline = 100%).
func BenchmarkFigure7ExtraCopies(b *testing.B) {
	b.Run("FTL", func(b *testing.B) { benchAgedRatio(b, sim.FTL, true) })
	b.Run("NFTL", func(b *testing.B) { benchAgedRatio(b, sim.NFTL, true) })
}

// --- Ablations (DESIGN.md §4) ---

// quickFirstFailure runs one quick-scale FTL run to first failure.
func quickFirstFailure(b *testing.B, mutate func(*sim.Config)) time.Duration {
	b.Helper()
	sc := experiments.QuickScale()
	cfg := sim.Config{
		Geometry:        sc.Geometry,
		Cell:            nand.MLC2,
		Endurance:       sc.Endurance,
		Layer:           sim.FTL,
		LogicalSectors:  sc.LogicalSectors,
		SWL:             true,
		K:               0,
		T:               5,
		NoSpare:         true,
		Seed:            sc.Seed,
		StopOnFirstWear: true,
		MaxEvents:       sc.MaxEvents,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := sim.Run(cfg, sc.Model.Infinite(sc.Seed))
	if err != nil {
		b.Fatal(err)
	}
	if res.Err != nil {
		b.Fatal(res.Err)
	}
	return res.FirstWear
}

// BenchmarkAblationScanPolicy compares the paper's cyclic BET scan against
// random block-set selection (§3.3 surmises they behave alike).
func BenchmarkAblationScanPolicy(b *testing.B) {
	b.Run("cyclic", func(b *testing.B) {
		var fw time.Duration
		for i := 0; i < b.N; i++ {
			fw = quickFirstFailure(b, nil)
		}
		b.ReportMetric(fw.Hours(), "firstwear-hours")
	})
	b.Run("random", func(b *testing.B) {
		var fw time.Duration
		for i := 0; i < b.N; i++ {
			fw = quickFirstFailure(b, func(c *sim.Config) { c.SelectRandom = true })
		}
		b.ReportMetric(fw.Hours(), "firstwear-hours")
	})
}

// BenchmarkAblationFrontier compares the paper's single FTL write frontier
// (relocated cold data mixes with hot writes) against a dual frontier.
func BenchmarkAblationFrontier(b *testing.B) {
	b.Run("single", func(b *testing.B) {
		var fw time.Duration
		for i := 0; i < b.N; i++ {
			fw = quickFirstFailure(b, nil)
		}
		b.ReportMetric(fw.Hours(), "firstwear-hours")
	})
	b.Run("dual", func(b *testing.B) {
		var fw time.Duration
		for i := 0; i < b.N; i++ {
			fw = quickFirstFailure(b, func(c *sim.Config) { c.FTLDualFrontier = true })
		}
		b.ReportMetric(fw.Hours(), "firstwear-hours")
	})
}

// BenchmarkAblationWatermark compares the paper's 0.2% garbage-collection
// trigger against an eager 5% watermark.
func BenchmarkAblationWatermark(b *testing.B) {
	for _, cfg := range []struct {
		name string
		frac float64
	}{{"paper-0.2pct", 0.002}, {"eager-5pct", 0.05}} {
		b.Run(cfg.name, func(b *testing.B) {
			var fw time.Duration
			for i := 0; i < b.N; i++ {
				fw = quickFirstFailure(b, func(c *sim.Config) { c.GCFreeFraction = cfg.frac })
			}
			b.ReportMetric(fw.Hours(), "firstwear-hours")
		})
	}
}

// BenchmarkAblationPersistence times the dual-buffer BET snapshot cycle
// through reserved flash blocks.
func BenchmarkAblationPersistence(b *testing.B) {
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 64, PagesPerBlock: 32, PageSize: 2048, SpareSize: 64},
		StoreData: true,
	})
	dev := mtd.New(chip)
	drv, err := ftl.New(dev, ftl.Config{LogicalPages: 1500, Reserved: []int{0, 1}})
	if err != nil {
		b.Fatal(err)
	}
	lv, err := core.NewLeveler(core.Config{Blocks: 64, K: 0, Threshold: 100}, drv)
	if err != nil {
		b.Fatal(err)
	}
	store, err := mtd.NewBlockStore(dev, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewPersister(store)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		lv.OnErase(i % 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Save(lv); err != nil {
			b.Fatal(err)
		}
		if err := p.Load(lv); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Hot-path microbenchmarks ---

// BenchmarkBETUpdate times SWL-BETUpdate (Algorithm 2), the code that runs
// on every block erase.
func BenchmarkBETUpdate(b *testing.B) {
	drv := nopCleaner{}
	lv, err := core.NewLeveler(core.Config{Blocks: 4096, K: 0, Threshold: 1e18}, drv)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lv.OnErase(i & 4095)
	}
}

type nopCleaner struct{}

func (nopCleaner) EraseBlockSet(findex, k int) error { return nil }

// BenchmarkFTLWritePage times the page-mapping write path including
// amortized garbage collection.
func BenchmarkFTLWritePage(b *testing.B) {
	chip := nand.New(nand.Config{Geometry: nand.MLC2Geometry(256), Endurance: 1 << 30})
	drv, err := ftl.New(mtd.New(chip), ftl.Config{NoSpare: true})
	if err != nil {
		b.Fatal(err)
	}
	n := drv.LogicalPages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := drv.WritePage(int(uint(i*2654435761)%uint(n)), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNFTLWritePage times the block-mapping write path including
// merges. Uniform random writes are NFTL's worst case: replacement blocks
// fill slowly, the free pool stays pinned, and nearly every write runs the
// merge-based garbage collector — expect this orders of magnitude above the
// FTL write path, which is exactly the NFTL behaviour behind the paper's
// Table 4 (its erase counts dwarf FTL's over the same span).
func BenchmarkNFTLWritePage(b *testing.B) {
	chip := nand.New(nand.Config{Geometry: nand.MLC2Geometry(256), Endurance: 1 << 30})
	drv, err := nftl.New(mtd.New(chip), nftl.Config{NoSpare: true})
	if err != nil {
		b.Fatal(err)
	}
	n := drv.LogicalPages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := drv.WritePage(int(uint(i*2654435761)%uint(n)), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadSegment times synthetic trace generation, the substrate
// every simulation consumes.
func BenchmarkWorkloadSegment(b *testing.B) {
	m := workload.PaperScaled(1 << 17)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(m.Segment(i%m.Segments())) == 0 {
			b.Fatal("empty segment")
		}
	}
}

// BenchmarkAblationHotSplit compares plain FTL+SWL against FTL with the
// multi-hash hot-data identifier routing cold writes to their own frontier.
func BenchmarkAblationHotSplit(b *testing.B) {
	run := func(b *testing.B, split bool) {
		sc := experiments.QuickScale()
		var fw time.Duration
		for i := 0; i < b.N; i++ {
			chipCfg := nand.Config{Geometry: sc.Geometry, Cell: nand.MLC2, Endurance: sc.Endurance}
			var onWear func(int)
			worn := time.Duration(-1)
			now := time.Duration(0)
			onWear = func(int) {
				if worn < 0 {
					worn = now
				}
			}
			chipCfg.OnWear = onWear
			chip := nand.New(chipCfg)
			var id *hotdata.Identifier
			if split {
				var err error
				id, err = hotdata.New(hotdata.Config{Counters: 4096})
				if err != nil {
					b.Fatal(err)
				}
			}
			drv, err := ftl.New(mtd.New(chip), ftl.Config{
				LogicalPages: int(sc.LogicalSectors) / (sc.Geometry.PageSize / 512),
				NoSpare:      true,
				HotData:      id,
			})
			if err != nil {
				b.Fatal(err)
			}
			lv, err := core.NewLeveler(core.Config{Blocks: sc.Geometry.Blocks, K: 0, Threshold: 5}, drv)
			if err != nil {
				b.Fatal(err)
			}
			drv.SetOnErase(lv.OnErase)
			src := sc.Model.Infinite(sc.Seed)
			spp := sc.Geometry.PageSize / 512
			for worn < 0 {
				e, _ := src.Next()
				now = e.Time
				if e.Op != trace.Write {
					continue
				}
				first := int(e.LBA) / spp
				last := int(e.LBA+int64(e.Count)-1) / spp
				for lpn := first; lpn <= last && lpn < drv.LogicalPages(); lpn++ {
					if err := drv.WritePage(lpn, nil); err != nil {
						b.Fatal(err)
					}
				}
				if lv.NeedsLeveling() {
					if err := lv.Level(); err != nil {
						b.Fatal(err)
					}
				}
			}
			fw = worn
		}
		b.ReportMetric(fw.Hours(), "firstwear-hours")
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("hotsplit", func(b *testing.B) { run(b, true) })
}

// BenchmarkBaselineTrueFFS compares the paper's BET-guided SW Leveler with
// the periodic-random baseline (reference [16]) at a matched forced-recycle
// budget.
func BenchmarkBaselineTrueFFS(b *testing.B) {
	sc := experiments.QuickScale()
	base := func(mutate func(*sim.Config)) time.Duration {
		cfg := sim.Config{
			Geometry:        sc.Geometry,
			Cell:            nand.MLC2,
			Endurance:       sc.Endurance,
			Layer:           sim.FTL,
			LogicalSectors:  sc.LogicalSectors,
			SWL:             true,
			K:               0,
			T:               5,
			NoSpare:         true,
			Seed:            sc.Seed,
			StopOnFirstWear: true,
			MaxEvents:       sc.MaxEvents,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := sim.Run(cfg, sc.Model.Infinite(sc.Seed))
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		return res.FirstWear
	}
	b.Run("swl", func(b *testing.B) {
		var fw time.Duration
		for i := 0; i < b.N; i++ {
			fw = base(nil)
		}
		b.ReportMetric(fw.Hours(), "firstwear-hours")
	})
	b.Run("periodic", func(b *testing.B) {
		var fw time.Duration
		for i := 0; i < b.N; i++ {
			fw = base(func(c *sim.Config) { c.Periodic = true; c.Period = 40 })
		}
		b.ReportMetric(fw.Hours(), "firstwear-hours")
	})
}

// BenchmarkAblationMappingCache sweeps the DFTL translation-page cache
// budget, reporting first-wear time and the translation-page write traffic
// that demand paging costs (the RAM-vs-wear tradeoff behind the paper's
// remark that plain FTL "needs large main-memory space").
func BenchmarkAblationMappingCache(b *testing.B) {
	sc := experiments.QuickScale()
	for _, cache := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("cache-%d", cache), func(b *testing.B) {
			var fw time.Duration
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{
					Geometry:        sc.Geometry,
					Cell:            nand.MLC2,
					Endurance:       sc.Endurance,
					Layer:           sim.DFTL,
					LogicalSectors:  sc.LogicalSectors,
					SWL:             true,
					K:               0,
					T:               5,
					NoSpare:         true,
					DFTLCache:       cache,
					Seed:            sc.Seed,
					StopOnFirstWear: true,
					MaxEvents:       sc.MaxEvents,
				}
				res, err := sim.Run(cfg, sc.Model.Infinite(sc.Seed))
				if err != nil {
					b.Fatal(err)
				}
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				fw = res.FirstWear
			}
			b.ReportMetric(fw.Hours(), "firstwear-hours")
		})
	}
}
