// Fatdemo: the complete Figure 1 stack — a FAT16 file system on the
// block-device emulation of the FTL, over MTD and simulated NAND, with the
// SW Leveler watching erases underneath. Files go in, wear statistics come
// out.
//
// Run with: go run ./examples/fatdemo
package main

import (
	"fmt"
	"log"

	"flashswl/internal/blockdev"
	"flashswl/internal/core"
	"flashswl/internal/fat"
	"flashswl/internal/ftl"
	"flashswl/internal/mtd"
	"flashswl/internal/nand"
	"flashswl/internal/stats"
)

func main() {
	// 12 MB of MLC×2 flash.
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 96, PagesPerBlock: 32, PageSize: 2048, SpareSize: 64},
		Cell:      nand.MLC2,
		Endurance: 2000,
		StoreData: true,
	})
	drv, err := ftl.New(mtd.New(chip), ftl.Config{})
	if err != nil {
		log.Fatal(err)
	}
	leveler, err := core.NewLeveler(core.Config{Blocks: 96, K: 0, Threshold: 6}, drv)
	if err != nil {
		log.Fatal(err)
	}
	drv.SetOnErase(leveler.OnErase)

	bdev, err := blockdev.New(drv, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fsys, err := fat.Format(bdev, fat.FormatOptions{Label: "FLASHDEMO"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formatted FAT16: %d clusters × %d B (%d free)\n",
		fsys.TotalClusters(), fsys.ClusterSize(), fsys.FreeClusters())

	// A photo archive (cold) and an application log (hot).
	if err := fsys.Mkdir("PHOTOS"); err != nil {
		log.Fatal(err)
	}
	photo := make([]byte, 48*1024)
	for i := range photo {
		photo[i] = byte(i * 7)
	}
	// Fill ~80% of the volume: a mostly-full disk is what pins cold data
	// under flash blocks and makes static wear leveling matter.
	nPhotos := fsys.TotalClusters() * 8 / 10 / (len(photo) / fsys.ClusterSize())
	for i := 0; i < nPhotos; i++ {
		if err := fsys.WriteFile(fmt.Sprintf("PHOTOS/IMG%02d.JPG", i), photo); err != nil {
			log.Fatal(err)
		}
	}
	logLine := []byte("2007-06-04 13:37:00 static wear leveling demo event\n")
	logData := make([]byte, 0, 8192)
	for len(logData) < 8000 {
		logData = append(logData, logLine...)
	}
	for day := 0; day < 400; day++ {
		if err := fsys.WriteFile("APP.LOG", logData); err != nil {
			log.Fatal(err)
		}
		if leveler.NeedsLeveling() {
			if err := leveler.Level(); err != nil {
				log.Fatal(err)
			}
		}
	}

	entries, err := fsys.ReadDir("PHOTOS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PHOTOS holds %d files (~80%% full); APP.LOG rewritten 400 times\n", len(entries))

	back, err := fsys.ReadFile("PHOTOS/IMG07.JPG")
	if err != nil || len(back) != len(photo) {
		log.Fatalf("photo readback: %d bytes, %v", len(back), err)
	}
	fmt.Println("photo archive verified intact")

	dist := stats.Summarize(chip.EraseCounts(nil))
	c := drv.Counters()
	fmt.Printf("wear:     %s\n", dist.String())
	fmt.Printf("leveler:  %d block sets recycled across %d intervals\n",
		leveler.Stats().SetsRecycled, leveler.Stats().Resets)
	fmt.Printf("overhead: %d of %d erases forced, %d of %d copies\n",
		c.ForcedErases, c.Erases, c.ForcedCopies, c.LiveCopies)
}
