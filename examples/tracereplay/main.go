// Tracereplay: synthesize a workload trace with the paper's statistical
// profile, round-trip it through the text trace format, and replay it
// against NFTL with the SW Leveler attached — the full pipeline a user
// would run against their own recorded traces.
//
// Run with: go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"flashswl/internal/nand"
	"flashswl/internal/sim"
	"flashswl/internal/trace"
	"flashswl/internal/workload"
)

func main() {
	// One simulated day over a 16 MB device's sector range.
	geo := nand.Geometry{Blocks: 128, PagesPerBlock: 32, PageSize: 2048, SpareSize: 64}
	sectors := geo.Capacity() / 512 * 88 / 100
	model := workload.PaperScaled(sectors)
	model.Duration = 24 * time.Hour
	model.FillSegments = 12

	// Serialize the trace to the text format and parse it back, as if it
	// had been recorded on another machine.
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, model.Source()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace file:    %.1f MB of text\n", float64(buf.Len())/(1<<20))
	events, err := trace.ReadText(&buf)
	if err != nil {
		log.Fatal(err)
	}
	st := trace.Summarize(trace.NewSliceSource(events))
	fmt.Printf("events:        %d (%.2f writes/s, %.2f reads/s — paper: 1.82/1.97)\n",
		st.Events, st.WriteRate, st.ReadRate)
	fmt.Printf("footprint:     %.2f%% of LBAs written (paper: 36.62%%)\n",
		100*float64(st.UniqueLBAs)/float64(sectors))

	// Replay against NFTL + SWL.
	res, err := sim.Run(sim.Config{
		Geometry:       geo,
		Cell:           nand.MLC2,
		Endurance:      1000,
		Layer:          sim.NFTL,
		LogicalSectors: sectors,
		SWL:            true,
		K:              0,
		T:              20,
	}, trace.NewSliceSource(events))
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatalf("replay stopped early: %v", res.Err)
	}
	fmt.Printf("replayed:      %d page writes, %d page reads over %v\n",
		res.PageWrites, res.PageReads, res.SimTime)
	fmt.Printf("device:        %d erases (%d for leveling), %d live copies\n",
		res.Erases, res.ForcedErases, res.LiveCopies)
	fmt.Printf("erase counts:  %s\n", res.EraseStats.String())
}
