// Mlcendurance: the paper's motivating comparison — low-cost MLC×2 flash
// endures only 10,000 erase cycles per block against SLC's 100,000 — and
// how much of that gap static wear leveling wins back. The same workload
// runs over both cell types, with and without the SW Leveler, reporting the
// first failure time of each configuration.
//
// Run with: go run ./examples/mlcendurance
package main

import (
	"fmt"
	"log"
	"time"

	"flashswl/internal/nand"
	"flashswl/internal/sim"
	"flashswl/internal/workload"
)

func main() {
	geo := nand.Geometry{Blocks: 96, PagesPerBlock: 32, PageSize: 2048, SpareSize: 64}
	sectors := geo.Capacity() / 512 * 88 / 100
	model := workload.PaperScaled(sectors)

	// Endurance scaled 1:40 for a fast demo; the MLC:SLC ratio of 1:10 is
	// preserved.
	configs := []struct {
		name      string
		cell      nand.CellKind
		endurance int
		swl       bool
	}{
		{"MLC×2", nand.MLC2, 250, false},
		{"MLC×2 + SWL", nand.MLC2, 250, true},
		{"SLC", nand.SLC, 2500, false},
		{"SLC + SWL", nand.SLC, 2500, true},
	}

	fmt.Println("first failure time under the paper's workload profile:")
	var mlcBase, mlcSWL time.Duration
	for _, c := range configs {
		res, err := sim.Run(sim.Config{
			Geometry:        geo,
			Cell:            c.cell,
			Endurance:       c.endurance,
			Layer:           sim.FTL,
			LogicalSectors:  sectors,
			SWL:             c.swl,
			K:               0,
			T:               10,
			NoSpare:         true,
			StopOnFirstWear: true,
			MaxEvents:       200_000_000,
		}, model.Infinite(7))
		if err != nil {
			log.Fatal(err)
		}
		if res.Err != nil {
			log.Fatalf("%s: %v", c.name, res.Err)
		}
		fmt.Printf("  %-12s endurance %5d: first failure after %9v (%d erases, %s)\n",
			c.name, c.endurance, res.FirstWear.Round(time.Second), res.Erases, res.EraseStats.String())
		if c.cell == nand.MLC2 {
			if c.swl {
				mlcSWL = res.FirstWear
			} else {
				mlcBase = res.FirstWear
			}
		}
	}
	if mlcBase > 0 {
		fmt.Printf("\nstatic wear leveling extends MLC×2 lifetime by %.1f%%\n",
			100*(float64(mlcSWL)/float64(mlcBase)-1))
	}
}
