// Quickstart: build a simulated MLC×2 flash device, put the page-mapping
// FTL on top, attach the SW Leveler, and watch static wear leveling keep
// the erase counts even while one hot file is rewritten forever next to a
// large cold archive.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flashswl/internal/core"
	"flashswl/internal/ftl"
	"flashswl/internal/mtd"
	"flashswl/internal/nand"
	"flashswl/internal/stats"
)

func main() {
	// A small MLC×2 chip: 64 blocks × 16 pages. Endurance is lowered so
	// the demo shows wear within seconds.
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 64, PagesPerBlock: 16, PageSize: 2048, SpareSize: 64},
		Cell:      nand.MLC2,
		Endurance: 500,
		StoreData: true,
	})
	dev := mtd.New(chip)

	// The page-mapping FTL with its greedy cyclic-scan cleaner.
	drv, err := ftl.New(dev, ftl.Config{LogicalPages: 800})
	if err != nil {
		log.Fatal(err)
	}

	// Attach the SW Leveler: the FTL's cleaner is the core.Cleaner, and
	// every erase is reported back through OnErase (Algorithm 2).
	leveler, err := core.NewLeveler(core.Config{
		Blocks:    chip.Geometry().Blocks,
		K:         0,  // one BET flag per block (Figure 3a)
		Threshold: 10, // unevenness level that triggers SWL-Procedure
	}, drv)
	if err != nil {
		log.Fatal(err)
	}
	drv.SetOnErase(leveler.OnErase)

	// Lay down a cold archive: 600 pages written once, never updated.
	payload := make([]byte, 2048)
	for lpn := 200; lpn < 800; lpn++ {
		payload[0] = byte(lpn)
		if err := drv.WritePage(lpn, payload); err != nil {
			log.Fatal(err)
		}
	}

	// Hammer a small hot set and let the leveler work (Algorithm 1 runs
	// whenever the unevenness level reaches the threshold).
	for i := 0; i < 60_000; i++ {
		if err := drv.WritePage(i%50, payload); err != nil {
			log.Fatal(err)
		}
		if leveler.NeedsLeveling() {
			if err := leveler.Level(); err != nil {
				log.Fatal(err)
			}
		}
	}

	dist := stats.Summarize(chip.EraseCounts(nil))
	c := drv.Counters()
	fmt.Println("after 60k hot-page writes over a 600-page cold archive:")
	fmt.Printf("  erase counts:  %s\n", dist.String())
	fmt.Printf("  total erases:  %d (%d forced by the leveler)\n", c.Erases, c.ForcedErases)
	fmt.Printf("  live copies:   %d (%d moved for the leveler)\n", c.LiveCopies, c.ForcedCopies)
	fmt.Printf("  leveler:       %+v\n", leveler.Stats())
	fmt.Printf("  worn blocks:   %d of %d (first: %d)\n", chip.WornBlocks(), chip.Geometry().Blocks, chip.FirstWornBlock())

	// The cold archive is still intact.
	buf := make([]byte, 2048)
	for _, lpn := range []int{200, 500, 799} {
		ok, err := drv.ReadPage(lpn, buf)
		if err != nil || !ok || buf[0] != byte(lpn) {
			log.Fatalf("cold page %d corrupted (ok=%v err=%v)", lpn, ok, err)
		}
	}
	fmt.Println("  cold archive verified intact")
}
