// Arrayswl: one SW Leveler over a multi-chip flash array. Four chips are
// concatenated into a single block address space; the FTL and the leveler
// treat them as one device, so static wear leveling crosses chip boundaries
// — cold data parked on chip 0 ends up resting blocks on chip 3.
//
// Run with: go run ./examples/arrayswl
package main

import (
	"fmt"
	"log"

	"flashswl/internal/array"
	"flashswl/internal/core"
	"flashswl/internal/ftl"
	"flashswl/internal/mtd"
	"flashswl/internal/nand"
	"flashswl/internal/stats"
)

func main() {
	// Four identical 2 MB chips.
	const chips = 4
	members := make([]*nand.Chip, chips)
	for i := range members {
		members[i] = nand.New(nand.Config{
			Geometry:  nand.Geometry{Blocks: 32, PagesPerBlock: 16, PageSize: 2048, SpareSize: 64},
			Cell:      nand.MLC2,
			Endurance: 600,
		})
	}
	arr, err := array.New(members...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %d chips → %s\n", arr.Chips(), arr.Geometry())

	drv, err := ftl.New(mtd.New(arr), ftl.Config{NoSpare: true})
	if err != nil {
		log.Fatal(err)
	}
	leveler, err := core.NewLeveler(core.Config{
		Blocks:    arr.Geometry().Blocks,
		K:         1,
		Threshold: 8,
	}, drv)
	if err != nil {
		log.Fatal(err)
	}
	drv.SetOnErase(leveler.OnErase)

	// Cold archive filling ~70% of the logical space (it will sit on the
	// first chips), then a hot working set hammered for a long time.
	logical := drv.LogicalPages()
	coldLo := logical * 3 / 10
	for lpn := coldLo; lpn < logical; lpn++ {
		if err := drv.WritePage(lpn, nil); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 250_000; i++ {
		if err := drv.WritePage(i%64, nil); err != nil {
			log.Fatal(err)
		}
		if leveler.NeedsLeveling() {
			if err := leveler.Level(); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("per-chip wear after 250k hot writes over a cross-chip cold archive:")
	for i := 0; i < chips; i++ {
		dist := stats.Summarize(members[i].EraseCounts(nil))
		fmt.Printf("  chip %d: %s\n", i, dist.String())
	}
	all := stats.Summarize(arr.EraseCounts(nil))
	fmt.Printf("array:    %s\n", all.String())
	fmt.Printf("leveler:  %d sets recycled, %d intervals\n",
		leveler.Stats().SetsRecycled, leveler.Stats().Resets)
	fmt.Print("wear map (one row per chip):\n", stats.Heatmap(arr.EraseCounts(nil), 32))
}
