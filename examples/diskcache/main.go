// Diskcache: the paper's introduction motivates endurance work with flash
// used as a hard-disk cache (Intel Robson, Windows ReadyDrive) — a role
// with far higher write frequency than plain storage. This example drives
// an FTL-managed device with a cache-like workload (small, intense,
// skewed writes; a modest pinned-cold region holding prefetched boot data)
// and shows how the SW Leveler and its BET persistence behave across a
// simulated power cycle.
//
// Run with: go run ./examples/diskcache
package main

import (
	"fmt"
	"log"
	"math/rand"

	"flashswl/internal/core"
	"flashswl/internal/ftl"
	"flashswl/internal/mtd"
	"flashswl/internal/nand"
	"flashswl/internal/stats"
)

const (
	blocks    = 64
	ppb       = 16
	logical   = 800
	coldLow   = 300 // lpns [coldLow, logical) hold pinned boot images
	threshold = 8
)

func buildStack() (*nand.Chip, *ftl.Driver, *core.Leveler, *core.Persister) {
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: blocks, PagesPerBlock: ppb, PageSize: 2048, SpareSize: 64},
		Cell:      nand.MLC2,
		Endurance: 400,
		StoreData: true,
	})
	dev := mtd.New(chip)
	// Blocks 0 and 1 are reserved as the dual-buffer snapshot store for
	// the leveler's BET (paper §3.2).
	drv, err := ftl.New(dev, ftl.Config{LogicalPages: logical, Reserved: []int{0, 1}})
	if err != nil {
		log.Fatal(err)
	}
	// The reserved snapshot blocks are excluded from leveling: their BET
	// flags are pre-set each interval so the scan never waits on them.
	leveler, err := core.NewLeveler(core.Config{Blocks: blocks, K: 1, Threshold: threshold, Exclude: []int{0, 1}}, drv)
	if err != nil {
		log.Fatal(err)
	}
	drv.SetOnErase(leveler.OnErase)
	store, err := mtd.NewBlockStore(dev, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	persister, err := core.NewPersister(store)
	if err != nil {
		log.Fatal(err)
	}
	return chip, drv, leveler, persister
}

func cacheTraffic(drv *ftl.Driver, leveler *core.Leveler, rng *rand.Rand, writes int) {
	payload := make([]byte, 2048)
	for i := 0; i < writes; i++ {
		// 90% of cache writes hit 10% of the lines (a hot working set).
		lpn := rng.Intn(coldLow)
		if rng.Float64() < 0.9 {
			lpn = rng.Intn(coldLow / 10)
		}
		if err := drv.WritePage(lpn, payload); err != nil {
			log.Fatal(err)
		}
		if leveler.NeedsLeveling() {
			if err := leveler.Level(); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func main() {
	chip, drv, leveler, persister := buildStack()
	rng := rand.New(rand.NewSource(11))

	// Pin the boot images (cold data the cache never rewrites).
	payload := make([]byte, 2048)
	for lpn := coldLow; lpn < logical; lpn++ {
		if err := drv.WritePage(lpn, payload); err != nil {
			log.Fatal(err)
		}
	}

	cacheTraffic(drv, leveler, rng, 30_000)
	fmt.Println("before shutdown:")
	fmt.Printf("  erase counts: %s\n", stats.Summarize(chip.EraseCounts(nil)).String())
	fmt.Printf("  leveler:      ecnt=%d fcnt=%d unevenness=%.1f\n",
		leveler.Ecnt(), leveler.BET().Fcnt(), leveler.Unevenness())

	// Clean shutdown: persist the BET and counters to the reserved flash
	// blocks through the dual buffer.
	if err := persister.Save(leveler); err != nil {
		log.Fatal(err)
	}

	// "Reattach": a fresh leveler instance reloads the saved state, so no
	// erase history is lost across the power cycle. (The FTL state would
	// be remounted from spare areas; this example keeps the same driver
	// to focus on the leveler.)
	restored, err := core.NewLeveler(core.Config{Blocks: blocks, K: 1, Threshold: threshold, Exclude: []int{0, 1}}, drv)
	if err != nil {
		log.Fatal(err)
	}
	if err := persister.Load(restored); err != nil {
		log.Fatal(err)
	}
	drv.SetOnErase(restored.OnErase)
	fmt.Println("after reattach:")
	fmt.Printf("  restored:     ecnt=%d fcnt=%d findex=%d\n",
		restored.Ecnt(), restored.BET().Fcnt(), restored.Findex())

	cacheTraffic(drv, restored, rng, 30_000)
	dist := stats.Summarize(chip.EraseCounts(nil))
	fmt.Println("after another 30k cache writes:")
	fmt.Printf("  erase counts: %s\n", dist.String())
	fmt.Printf("  worn blocks:  %d\n", chip.WornBlocks())
	if dist.StdDev() > dist.Mean()/2 {
		fmt.Println("  (distribution drifting uneven — consider a lower threshold)")
	} else {
		fmt.Println("  distribution held even across the power cycle")
	}
}
