package flashswl_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flashswl/internal/blockdev"
	"flashswl/internal/core"
	"flashswl/internal/fat"
	"flashswl/internal/ftl"
	"flashswl/internal/mtd"
	"flashswl/internal/nand"
	"flashswl/internal/stats"
)

// TestFullStackPowerCycle drives the complete Figure 1 stack — FAT16 file
// system over the block-device-emulating FTL over MTD over NAND, with the
// SW Leveler attached — through a workload and a simulated power cycle:
// the FTL remounts from spare areas, the file system remounts from its
// on-disk structures, and the leveler reloads its BET from the dual-buffer
// snapshot blocks. Everything must survive.
func TestFullStackPowerCycle(t *testing.T) {
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 96, PagesPerBlock: 16, PageSize: 2048, SpareSize: 64},
		Cell:      nand.MLC2,
		Endurance: 100_000,
		StoreData: true,
	})
	dev := mtd.New(chip)
	const logicalPages = 1200
	reserved := []int{0, 1}

	buildLeveler := func(drv *ftl.Driver) *core.Leveler {
		lv, err := core.NewLeveler(core.Config{
			Blocks: 96, K: 0, Threshold: 4, Exclude: reserved,
			Rand: core.NewSplitMix64(5),
		}, drv)
		if err != nil {
			t.Fatal(err)
		}
		drv.SetOnErase(lv.OnErase)
		return lv
	}
	store, err := mtd.NewBlockStore(dev, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	persister, err := core.NewPersister(store)
	if err != nil {
		t.Fatal(err)
	}

	// --- First boot: format and populate. ---
	drv, err := ftl.New(dev, ftl.Config{LogicalPages: logicalPages, Reserved: reserved})
	if err != nil {
		t.Fatal(err)
	}
	leveler := buildLeveler(drv)
	bdev, err := blockdev.New(drv, 2048)
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := fat.Format(bdev, fat.FormatOptions{Label: "FLASHSWL"})
	if err != nil {
		t.Fatal(err)
	}

	if err := fsys.Mkdir("ARCHIVE"); err != nil {
		t.Fatal(err)
	}
	// Fill ~3/4 of the volume with cold archive files. FAT's next-free
	// cluster rotation means a near-empty volume spreads hot rewrites over
	// the whole logical space by itself; a mostly-full disk — the paper's
	// premise — confines the hot traffic and pins the cold blocks.
	cold := make([]byte, 64*1024)
	rng := rand.New(rand.NewSource(77))
	rng.Read(cold)
	coldFiles := fsys.TotalClusters() * 3 / 4 / (len(cold) / fsys.ClusterSize())
	for i := 0; i < coldFiles; i++ {
		if err := fsys.WriteFile(fmt.Sprintf("ARCHIVE/MOV%d.BIN", i), cold); err != nil {
			t.Fatalf("cold file %d: %v", i, err)
		}
	}
	// A hot log file, appended and rewritten continuously.
	hot := bytes.Repeat([]byte{0xCC}, 4096)
	for round := 0; round < 600; round++ {
		if err := fsys.WriteFile("HOT.LOG", hot); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if leveler.NeedsLeveling() {
			if err := leveler.Level(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if leveler.Stats().SetsRecycled == 0 {
		t.Fatal("hot/cold workload never triggered static wear leveling")
	}
	ecntBefore := leveler.Ecnt()
	if err := persister.Save(leveler); err != nil {
		t.Fatal(err)
	}

	// --- Power cycle: rebuild every layer from flash. ---
	drv2, err := ftl.Mount(dev, ftl.Config{LogicalPages: logicalPages, Reserved: reserved})
	if err != nil {
		t.Fatalf("ftl.Mount: %v", err)
	}
	leveler2 := buildLeveler(drv2)
	if err := persister.Load(leveler2); err != nil {
		t.Fatalf("leveler reload: %v", err)
	}
	if leveler2.Ecnt() != ecntBefore {
		t.Errorf("leveler ecnt = %d after reload, want %d", leveler2.Ecnt(), ecntBefore)
	}
	bdev2, err := blockdev.New(drv2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	fsys2, err := fat.Mount(bdev2)
	if err != nil {
		t.Fatalf("fat.Mount: %v", err)
	}
	for i := 0; i < coldFiles; i += 3 {
		got, err := fsys2.ReadFile(fmt.Sprintf("ARCHIVE/MOV%d.BIN", i))
		if err != nil {
			t.Fatalf("cold file %d after power cycle: %v", i, err)
		}
		if !bytes.Equal(got, cold) {
			t.Fatalf("cold archive file %d corrupted across power cycle", i)
		}
	}
	gotHot, err := fsys2.ReadFile("HOT.LOG")
	if err != nil || !bytes.Equal(gotHot, hot) {
		t.Fatalf("hot file after power cycle: %v", err)
	}

	// --- Second session: keep running; leveling must keep spreading. ---
	for round := 0; round < 600; round++ {
		if err := fsys2.WriteFile("HOT.LOG", hot); err != nil {
			t.Fatalf("second session round %d: %v", round, err)
		}
		if leveler2.NeedsLeveling() {
			if err := leveler2.Level(); err != nil {
				t.Fatal(err)
			}
		}
	}
	counts := chip.EraseCounts(nil)
	dist := stats.Summarize(counts[2:]) // exclude the reserved snapshot blocks
	if dist.Mean() == 0 {
		t.Fatal("no wear recorded")
	}
	if dist.StdDev() > dist.Mean() {
		t.Errorf("wear badly skewed despite leveling: %s", dist.String())
	}
	// The cold archive's blocks must have been erased at least once (the
	// point of static wear leveling): no non-reserved block stays at zero
	// erases forever under sustained leveling.
	zeros := 0
	for _, ec := range counts[2:] {
		if ec == 0 {
			zeros++
		}
	}
	if zeros > len(counts)/4 {
		t.Errorf("%d of %d blocks never erased; cold data is still pinned", zeros, len(counts)-2)
	}
}

// TestFullStackFaultInjection verifies the stack surfaces (not masks) chip
// faults: a program failure mid-file-write must become an error at the file
// system API.
func TestFullStackFaultInjection(t *testing.T) {
	fail := false
	chip := nand.New(nand.Config{
		Geometry:  nand.Geometry{Blocks: 32, PagesPerBlock: 8, PageSize: 1024, SpareSize: 32},
		StoreData: true,
		FaultHook: func(op nand.Op, b, p int) error {
			if fail && op == nand.OpProgram {
				return nand.ErrInjected
			}
			return nil
		},
	})
	drv, err := ftl.New(mtd.New(chip), ftl.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bdev, err := blockdev.New(drv, 1024)
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := fat.Format(bdev, fat.FormatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.WriteFile("OK.BIN", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	fail = true
	err = fsys.WriteFile("BAD.BIN", bytes.Repeat([]byte{1}, 4096))
	if !errors.Is(err, nand.ErrInjected) {
		t.Fatalf("injected fault surfaced as %v", err)
	}
	fail = false
	// The stack keeps working after the fault clears.
	if err := fsys.WriteFile("OK2.BIN", []byte("recovered")); err != nil {
		t.Fatalf("after fault: %v", err)
	}
	got, err := fsys.ReadFile("OK2.BIN")
	if err != nil || string(got) != "recovered" {
		t.Fatalf("read after recovery: %q, %v", got, err)
	}
}

// TestStackWearRetirementEndToEnd wears a tiny fail-on-wear device through
// the file system until blocks retire, checking the stack degrades
// gracefully (errors, not corruption).
func TestStackWearRetirementEndToEnd(t *testing.T) {
	chip := nand.New(nand.Config{
		Geometry:   nand.Geometry{Blocks: 32, PagesPerBlock: 8, PageSize: 1024, SpareSize: 32},
		Endurance:  30,
		FailOnWear: true,
		StoreData:  true,
	})
	drv, err := ftl.New(mtd.New(chip), ftl.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bdev, err := blockdev.New(drv, 1024)
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := fat.Format(bdev, fat.FormatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 2048)
	var wErr error
	rounds := 0
	for rounds = 0; rounds < 20_000; rounds++ {
		name := fmt.Sprintf("F%d.BIN", rounds%8)
		if wErr = fsys.WriteFile(name, payload); wErr != nil {
			break
		}
	}
	if wErr == nil {
		t.Fatalf("endurance-30 device survived %d rewrite rounds", rounds)
	}
	if !errors.Is(wErr, ftl.ErrNoSpace) {
		t.Fatalf("device death surfaced as %v, want ErrNoSpace", wErr)
	}
	if chip.WornBlocks() == 0 {
		t.Fatal("no blocks worn out")
	}
}
